// Package bitslice compiles MBA expressions into flat, allocation-free
// bytecode and evaluates 64 test vectors per uint64 operation by
// bitslicing.
//
// A compiled Prog is a register program over the term DAG: constants
// are folded at compile time, structurally identical subterms share one
// register (DAG deduplication), and every instruction writes a fresh
// destination register, so kernels never have to worry about aliasing.
//
// Two execution engines interpret the same bytecode:
//
//   - scalar: registers hold 64 lanes of word values; each instruction
//     runs a tight 64-iteration loop of ordinary uint64 arithmetic.
//     One instruction decode buys 64 evaluations.
//   - sliced: registers hold one uint64 *bit-plane* per bit of the
//     register's width; lane i of plane j is bit j of test vector i.
//     Bitwise operators cost one word-op per plane for all 64 lanes;
//     add/sub/neg ripple a carry/borrow plane across the width; mul is
//     shift-and-add over the planes (constant multipliers iterate only
//     the constant's set bits).
//
// The compiler prices both engines with a static cost model and
// EngineAuto picks the cheaper one, so word-level-heavy programs (wide
// variable multiplies) fall back to the scalar interpreter while
// bitwise-heavy programs run sliced.
package bitslice

import (
	"fmt"
	"math/bits"
	"sort"

	"mbasolver/internal/bv"
	"mbasolver/internal/expr"
)

type opcode uint8

const (
	opNot opcode = iota
	opNeg
	opAnd
	opOr
	opXor
	opAdd
	opSub
	opMul
	opMulC // b is an index into Prog.cpool, not a register
	opEq
	opNe
	opUlt
)

// instr is one bytecode instruction. w is the width of the result
// register; aw is the width of the argument registers (they differ
// only for the predicates, whose result width is 1).
type instr struct {
	op     opcode
	w, aw  uint8
	dst, a uint32
	b      uint32
}

// constEntry prefills a register with a compile-time constant.
type constEntry struct {
	reg uint32
	val uint64
}

// Prog is a compiled expression: a register program plus the metadata
// an Evaluator needs to run it. Programs are immutable after Compile
// and safe for concurrent use by any number of Evaluators.
type Prog struct {
	Width uint     // result width in bits (1 for predicates)
	Vars  []string // sorted; variable i is bound to register i

	code     []instr
	consts   []constEntry
	cpool    []uint64 // constants referenced by opMulC
	out      uint32   // result register
	nregs    int
	regWidth []uint8 // width of each register, indexed by register

	slicedCost, scalarCost float64
}

// NumInstrs reports the length of the compiled bytecode (0 when the
// whole expression folded to a constant or a single variable).
func (p *Prog) NumInstrs() int { return len(p.code) }

// Sliced reports whether EngineAuto would run this program on the
// bitsliced engine rather than the scalar interpreter.
func (p *Prog) Sliced() bool { return p.slicedCost < p.scalarCost }

func maskOf(width uint) uint64 {
	if width >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << width) - 1
}

// Compile lowers e at the given width into bytecode. It panics only on
// widths outside 1..64 (mirroring eval.Mask); every well-formed
// expression compiles.
func Compile(e *expr.Expr, width uint) (*Prog, error) {
	if width == 0 || width > 64 {
		return nil, fmt.Errorf("bitslice: width %d out of range 1..64", width)
	}
	return CompileTerm(bv.FromExpr(e, width))
}

// CompileTerm lowers a bit-vector term (including Eq/Ne/Ult
// predicates, which compile to width-1 results) into bytecode.
func CompileTerm(t *bv.Term) (*Prog, error) {
	if t == nil {
		return nil, fmt.Errorf("bitslice: nil term")
	}
	vars := bv.Vars(t)
	names := make([]string, 0, len(vars))
	for n := range vars {
		names = append(names, n)
	}
	sort.Strings(names)

	b := &builder{
		varReg:   make(map[string]uint32, len(names)),
		constReg: make(map[ckey]uint32),
		cpoolIdx: make(map[uint64]uint32),
		memo:     make(map[nkey]uint32),
		termMemo: make(map[*bv.Term]uint32),
		constOf:  make(map[uint32]uint64),
	}
	for _, n := range names {
		w := vars[n]
		b.varReg[n] = b.newReg(uint8(w))
	}
	out, err := b.emitTerm(t)
	if err != nil {
		return nil, err
	}
	p := &Prog{
		Width:    t.Width,
		Vars:     names,
		code:     b.code,
		consts:   b.consts,
		cpool:    b.cpool,
		out:      out,
		nregs:    int(b.next),
		regWidth: b.regWidth,
	}
	p.price()
	return p, nil
}

type ckey struct {
	val uint64
	w   uint8
}

type nkey struct {
	op     opcode
	w, aw  uint8
	a, b   uint32
}

type builder struct {
	varReg   map[string]uint32
	constReg map[ckey]uint32
	cpoolIdx map[uint64]uint32
	memo     map[nkey]uint32
	termMemo map[*bv.Term]uint32
	constOf  map[uint32]uint64

	next     uint32
	regWidth []uint8
	code     []instr
	consts   []constEntry
	cpool    []uint64
}

func (b *builder) newReg(w uint8) uint32 {
	r := b.next
	b.next++
	b.regWidth = append(b.regWidth, w)
	return r
}

func (b *builder) constant(v uint64, w uint8) uint32 {
	v &= maskOf(uint(w))
	k := ckey{v, w}
	if r, ok := b.constReg[k]; ok {
		return r
	}
	r := b.newReg(w)
	b.constReg[k] = r
	b.constOf[r] = v
	b.consts = append(b.consts, constEntry{reg: r, val: v})
	return r
}

func (b *builder) cpoolAdd(v uint64) uint32 {
	if i, ok := b.cpoolIdx[v]; ok {
		return i
	}
	i := uint32(len(b.cpool))
	b.cpool = append(b.cpool, v)
	b.cpoolIdx[v] = i
	return i
}

func (b *builder) emitTerm(t *bv.Term) (uint32, error) {
	if r, ok := b.termMemo[t]; ok {
		return r, nil
	}
	var r uint32
	var err error
	w := uint8(t.Width)
	switch t.Op {
	case bv.Const:
		r = b.constant(t.Val, w)
	case bv.Var:
		r = b.varReg[t.Name]
	case bv.Not, bv.Neg:
		var a uint32
		if a, err = b.emitTerm(t.Args[0]); err != nil {
			return 0, err
		}
		r = b.emit1(opFor(t.Op), w, a)
	case bv.And, bv.Or, bv.Xor, bv.Add, bv.Sub, bv.Mul:
		var a, c uint32
		if a, err = b.emitTerm(t.Args[0]); err != nil {
			return 0, err
		}
		if c, err = b.emitTerm(t.Args[1]); err != nil {
			return 0, err
		}
		r = b.emit2(opFor(t.Op), w, w, a, c)
	case bv.Eq, bv.Ne, bv.Ult:
		var a, c uint32
		if a, err = b.emitTerm(t.Args[0]); err != nil {
			return 0, err
		}
		if c, err = b.emitTerm(t.Args[1]); err != nil {
			return 0, err
		}
		r = b.emit2(opFor(t.Op), 1, uint8(t.Args[0].Width), a, c)
	default:
		return 0, fmt.Errorf("bitslice: unsupported op %v", t.Op)
	}
	b.termMemo[t] = r
	return r, nil
}

func opFor(op bv.Op) opcode {
	switch op {
	case bv.Not:
		return opNot
	case bv.Neg:
		return opNeg
	case bv.And:
		return opAnd
	case bv.Or:
		return opOr
	case bv.Xor:
		return opXor
	case bv.Add:
		return opAdd
	case bv.Sub:
		return opSub
	case bv.Mul:
		return opMul
	case bv.Eq:
		return opEq
	case bv.Ne:
		return opNe
	case bv.Ult:
		return opUlt
	}
	panic("bitslice: no opcode for " + op.String())
}

func (b *builder) emit1(op opcode, w uint8, a uint32) uint32 {
	if va, ok := b.constOf[a]; ok {
		m := maskOf(uint(w))
		switch op {
		case opNot:
			return b.constant(^va&m, w)
		case opNeg:
			return b.constant((-va)&m, w)
		}
	}
	k := nkey{op: op, w: w, aw: w, a: a}
	if r, ok := b.memo[k]; ok {
		return r
	}
	r := b.newReg(w)
	b.code = append(b.code, instr{op: op, w: w, aw: w, dst: r, a: a})
	b.memo[k] = r
	return r
}

func commutative(op opcode) bool {
	switch op {
	case opAnd, opOr, opXor, opAdd, opMul, opEq, opNe:
		return true
	}
	return false
}

func (b *builder) emit2(op opcode, w, aw uint8, a, c uint32) uint32 {
	m := maskOf(uint(aw))
	va, aConst := b.constOf[a]
	vc, cConst := b.constOf[c]
	if aConst && cConst {
		return b.constant(fold2(op, m, va, vc), w)
	}
	// Canonicalize commutative operands so structurally equal subterms
	// dedup regardless of argument order, and so a lone constant sits
	// on the c side for the identity checks and opMulC below.
	if commutative(op) && (a > c || aConst) {
		a, c = c, a
		va, aConst, vc, cConst = vc, cConst, va, aConst
	}
	if cConst {
		switch op {
		case opAnd:
			if vc == 0 {
				return b.constant(0, w)
			}
			if vc == m {
				return a
			}
		case opOr:
			if vc == 0 {
				return a
			}
			if vc == m {
				return b.constant(m, w)
			}
		case opXor, opAdd:
			if vc == 0 {
				return a
			}
		case opSub:
			if vc == 0 {
				return a
			}
		case opMul:
			switch vc {
			case 0:
				return b.constant(0, w)
			case 1:
				return a
			}
			return b.emitMulC(w, a, vc)
		}
	}
	if a == c {
		switch op {
		case opAnd, opOr:
			return a
		case opXor, opSub:
			return b.constant(0, w)
		case opEq:
			return b.constant(1, 1)
		case opNe, opUlt:
			return b.constant(0, 1)
		}
	}
	k := nkey{op: op, w: w, aw: aw, a: a, b: c}
	if r, ok := b.memo[k]; ok {
		return r
	}
	r := b.newReg(w)
	b.code = append(b.code, instr{op: op, w: w, aw: aw, dst: r, a: a, b: c})
	b.memo[k] = r
	return r
}

func (b *builder) emitMulC(w uint8, a uint32, c uint64) uint32 {
	idx := b.cpoolAdd(c)
	k := nkey{op: opMulC, w: w, aw: w, a: a, b: idx}
	if r, ok := b.memo[k]; ok {
		return r
	}
	r := b.newReg(w)
	b.code = append(b.code, instr{op: opMulC, w: w, aw: w, dst: r, a: a, b: idx})
	b.memo[k] = r
	return r
}

func fold2(op opcode, m, a, c uint64) uint64 {
	switch op {
	case opAnd:
		return a & c
	case opOr:
		return a | c
	case opXor:
		return a ^ c
	case opAdd:
		return (a + c) & m
	case opSub:
		return (a - c) & m
	case opMul:
		return (a * c) & m
	case opEq:
		if a == c {
			return 1
		}
		return 0
	case opNe:
		if a != c {
			return 1
		}
		return 0
	case opUlt:
		if a < c {
			return 1
		}
		return 0
	}
	panic("bitslice: fold2 on unary opcode")
}

// price fills in the static cost model for both engines, in rough
// word-operations per 64-lane block. The scalar interpreter pays one
// decode-plus-execute per instruction per lane; the sliced engine pays
// per-plane kernel work plus a per-variable transpose at block load.
func (p *Prog) price() {
	var sliced float64
	for _, in := range p.code {
		w := float64(in.w)
		aw := float64(in.aw)
		switch in.op {
		case opNot, opAnd, opOr, opXor:
			sliced += w
		case opNeg:
			sliced += 2 * w
		case opAdd, opSub:
			sliced += 4 * w
		case opMul:
			sliced += 1.5 * w * w
		case opMulC:
			sliced += float64(bits.OnesCount64(p.cpool[in.b])) * 4 * w
		case opEq, opNe:
			sliced += 2 * aw
		case opUlt:
			sliced += 4 * aw
		}
	}
	// Transposing each variable block in, plus the result block out.
	sliced += float64(len(p.Vars)+1) * 400
	p.slicedCost = sliced
	// The scalar engine runs ~64 word ops per instruction per block;
	// 176 (not 256) reflects its mask-free full-width fast paths, which
	// most instructions hit (narrow programs pay the mask but win the
	// comparison against sliced far less often anyway).
	p.scalarCost = float64(len(p.code)) * 176
}
