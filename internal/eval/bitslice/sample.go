package bitslice

import "sync/atomic"

// IOSample is one input/output observation of a compiled program.
// Inputs is parallel to the program's sorted Vars list.
type IOSample struct {
	Inputs []uint64
	Output uint64
}

// splitmix64 steps the given state and returns the next output; the
// same generator drives the smt witness prober, so sampling is fully
// deterministic for a given seed.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// SampleIO draws n pseudo-random input tuples for p and evaluates
// them in 64-lane blocks, returning the observations in draw order.
// A non-nil stop flag is consulted between blocks; raising it
// truncates the result to the blocks already evaluated.
func SampleIO(p *Prog, n int, seed uint64, stop *atomic.Bool) []IOSample {
	if n <= 0 {
		return nil
	}
	state := seed
	ev := NewEvaluator(p)
	samples := make([]IOSample, 0, n)
	outs := make([]uint64, 0, 64)
	for done := 0; done < n; {
		if stop != nil && stop.Load() {
			return samples
		}
		lanes := n - done
		if lanes > 64 {
			lanes = 64
		}
		blk := NewBlock(p.Width, lanes)
		for _, v := range p.Vars {
			for i := 0; i < lanes; i++ {
				blk.Set(v, i, splitmix64(&state))
			}
		}
		outs = ev.EvalBlock(blk, outs[:0])
		for i := 0; i < lanes; i++ {
			in := make([]uint64, len(p.Vars))
			for vi, v := range p.Vars {
				in[vi] = blk.Get(v, i)
			}
			samples = append(samples, IOSample{Inputs: in, Output: outs[i]})
		}
		done += lanes
	}
	return samples
}
