package bitslice

// Engine selects how an Evaluator interprets a program's bytecode.
type Engine uint8

const (
	// EngineAuto picks sliced or scalar per program via the compile
	// time cost model.
	EngineAuto Engine = iota
	// EngineScalar forces the lane-blocked word interpreter.
	EngineScalar
	// EngineSliced forces the bit-plane engine.
	EngineSliced
)

// Evaluator owns the mutable scratch state needed to run one program:
// a lane-major register file for the scalar engine and a flat plane
// arena for the sliced engine. Rebinding to another program via Bind
// reuses the allocations, so a scoring loop over many candidate
// programs allocates only when register demand grows.
//
// An Evaluator is not safe for concurrent use; create one per
// goroutine (the shared Prog is immutable).
type Evaluator struct {
	prog   *Prog
	engine Engine
	sliced bool // resolved choice for prog under engine

	lanes    []uint64 // scalar: register r occupies lanes[r*64 : r*64+64]
	planes   []uint64 // sliced: register r occupies planes[planeOff[r]:...]
	planeOff []uint32
	regs     []uint64 // single-point scratch for Eval
}

// NewEvaluator returns an evaluator for p using EngineAuto.
func NewEvaluator(p *Prog) *Evaluator { return NewEvaluatorEngine(p, EngineAuto) }

// NewEvaluatorEngine returns an evaluator pinned to a specific engine
// (the benchmark harness uses this to measure the engines separately).
func NewEvaluatorEngine(p *Prog, e Engine) *Evaluator {
	ev := &Evaluator{engine: e}
	ev.Bind(p)
	return ev
}

// Bind switches the evaluator to another program, growing (never
// shrinking) its scratch buffers.
func (ev *Evaluator) Bind(p *Prog) {
	ev.prog = p
	switch ev.engine {
	case EngineScalar:
		ev.sliced = false
	case EngineSliced:
		ev.sliced = true
	default:
		ev.sliced = p.Sliced()
	}
	if ev.sliced {
		if cap(ev.planeOff) < p.nregs+1 {
			ev.planeOff = make([]uint32, p.nregs+1)
		}
		ev.planeOff = ev.planeOff[:p.nregs+1]
		var off uint32
		for r := 0; r < p.nregs; r++ {
			ev.planeOff[r] = off
			off += uint32(p.regWidth[r])
		}
		ev.planeOff[p.nregs] = off
		if cap(ev.planes) < int(off) {
			ev.planes = make([]uint64, off)
		}
		ev.planes = ev.planes[:off]
		// Constant registers are never overwritten by the program (every
		// instruction writes a fresh register), so prefill them once per
		// bind instead of once per block.
		for _, c := range p.consts {
			d := ev.reg(c.reg)
			for j := range d {
				if c.val>>uint(j)&1 != 0 {
					d[j] = ^uint64(0)
				} else {
					d[j] = 0
				}
			}
		}
	} else {
		need := p.nregs * 64
		if cap(ev.lanes) < need {
			ev.lanes = make([]uint64, need)
		}
		ev.lanes = ev.lanes[:need]
		for _, c := range p.consts {
			d := (*[64]uint64)(ev.lanes[c.reg*64:])
			for k := range d {
				d[k] = c.val
			}
		}
	}
}

// Prog returns the currently bound program.
func (ev *Evaluator) Prog() *Prog { return ev.prog }

// Eval runs the program on a single assignment (unbound variables are
// zero, mirroring eval.Eval) using the scalar interpreter regardless
// of engine — one point never amortizes a transpose.
func (ev *Evaluator) Eval(env map[string]uint64) uint64 {
	p := ev.prog
	if cap(ev.regs) < p.nregs {
		ev.regs = make([]uint64, p.nregs)
	}
	regs := ev.regs[:p.nregs]
	for i, name := range p.Vars {
		regs[i] = env[name] & maskOf(uint(p.regWidth[i]))
	}
	for _, c := range p.consts {
		regs[c.reg] = c.val
	}
	for _, in := range p.code {
		a := regs[in.a]
		m := maskOf(uint(in.w))
		switch in.op {
		case opNot:
			regs[in.dst] = ^a & m
		case opNeg:
			regs[in.dst] = (-a) & m
		case opAnd:
			regs[in.dst] = a & regs[in.b]
		case opOr:
			regs[in.dst] = a | regs[in.b]
		case opXor:
			regs[in.dst] = a ^ regs[in.b]
		case opAdd:
			regs[in.dst] = (a + regs[in.b]) & m
		case opSub:
			regs[in.dst] = (a - regs[in.b]) & m
		case opMul:
			regs[in.dst] = (a * regs[in.b]) & m
		case opMulC:
			regs[in.dst] = (a * p.cpool[in.b]) & m
		case opEq:
			regs[in.dst] = b2i(a == regs[in.b])
		case opNe:
			regs[in.dst] = b2i(a != regs[in.b])
		case opUlt:
			regs[in.dst] = b2i(a < regs[in.b])
		}
	}
	return regs[p.out]
}

func b2i(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// EvalBlock evaluates every lane of blk and appends the per-lane
// results (blk.N() of them) to out, returning the extended slice.
func (ev *Evaluator) EvalBlock(blk *Block, out []uint64) []uint64 {
	if ev.sliced {
		return ev.evalSliced(blk, out)
	}
	return ev.evalScalar(blk, out)
}

func (ev *Evaluator) evalScalar(blk *Block, out []uint64) []uint64 {
	p := ev.prog
	for i, name := range p.Vars {
		d := (*[64]uint64)(ev.lanes[i*64:])
		src := blk.lanes(name)
		switch {
		case src == nil:
			*d = [64]uint64{}
		case p.regWidth[i] == 64:
			*d = *src
		default:
			m := maskOf(uint(p.regWidth[i]))
			for k := 0; k < 64; k++ {
				d[k] = src[k] & m
			}
		}
	}
	for _, in := range p.code {
		d := (*[64]uint64)(ev.lanes[in.dst*64:])
		a := (*[64]uint64)(ev.lanes[in.a*64:])
		m := maskOf(uint(in.w))
		full := in.w == 64 // full-width ops need no mask; skip the AND per lane
		switch in.op {
		case opNot:
			if full {
				for k := 0; k < 64; k++ {
					d[k] = ^a[k]
				}
			} else {
				for k := 0; k < 64; k++ {
					d[k] = ^a[k] & m
				}
			}
		case opNeg:
			if full {
				for k := 0; k < 64; k++ {
					d[k] = -a[k]
				}
			} else {
				for k := 0; k < 64; k++ {
					d[k] = (-a[k]) & m
				}
			}
		case opMulC:
			c := ev.prog.cpool[in.b]
			if full {
				for k := 0; k < 64; k++ {
					d[k] = a[k] * c
				}
			} else {
				for k := 0; k < 64; k++ {
					d[k] = (a[k] * c) & m
				}
			}
		default:
			b := (*[64]uint64)(ev.lanes[in.b*64:])
			switch in.op {
			case opAnd:
				for k := 0; k < 64; k++ {
					d[k] = a[k] & b[k]
				}
			case opOr:
				for k := 0; k < 64; k++ {
					d[k] = a[k] | b[k]
				}
			case opXor:
				for k := 0; k < 64; k++ {
					d[k] = a[k] ^ b[k]
				}
			case opAdd:
				if full {
					for k := 0; k < 64; k++ {
						d[k] = a[k] + b[k]
					}
				} else {
					for k := 0; k < 64; k++ {
						d[k] = (a[k] + b[k]) & m
					}
				}
			case opSub:
				if full {
					for k := 0; k < 64; k++ {
						d[k] = a[k] - b[k]
					}
				} else {
					for k := 0; k < 64; k++ {
						d[k] = (a[k] - b[k]) & m
					}
				}
			case opMul:
				if full {
					for k := 0; k < 64; k++ {
						d[k] = a[k] * b[k]
					}
				} else {
					for k := 0; k < 64; k++ {
						d[k] = (a[k] * b[k]) & m
					}
				}
			case opEq:
				for k := 0; k < 64; k++ {
					d[k] = b2i(a[k] == b[k])
				}
			case opNe:
				for k := 0; k < 64; k++ {
					d[k] = b2i(a[k] != b[k])
				}
			case opUlt:
				for k := 0; k < 64; k++ {
					d[k] = b2i(a[k] < b[k])
				}
			}
		}
	}
	res := (*[64]uint64)(ev.lanes[p.out*64:])
	return append(out, res[:blk.N()]...)
}

func (ev *Evaluator) reg(r uint32) []uint64 {
	return ev.planes[ev.planeOff[r]:ev.planeOff[r+1]:ev.planeOff[r+1]]
}

func (ev *Evaluator) evalSliced(blk *Block, out []uint64) []uint64 {
	p := ev.prog
	for i, name := range p.Vars {
		d := ev.reg(uint32(i))
		src := blk.planesFor(name)
		n := copy(d, src)
		for ; n < len(d); n++ {
			d[n] = 0
		}
	}
	for _, in := range p.code {
		d := ev.reg(in.dst)
		a := ev.reg(in.a)
		switch in.op {
		case opNot:
			for j := range d {
				d[j] = ^a[j]
			}
		case opNeg:
			// -a = ~a + 1: ripple an all-ones carry-in through ~a.
			c := ^uint64(0)
			for j := range d {
				na := ^a[j]
				d[j] = na ^ c
				c = na & c
			}
		case opMulC:
			mulCSliced(d, a, p.cpool[in.b])
		case opAnd:
			b := ev.reg(in.b)
			for j := range d {
				d[j] = a[j] & b[j]
			}
		case opOr:
			b := ev.reg(in.b)
			for j := range d {
				d[j] = a[j] | b[j]
			}
		case opXor:
			b := ev.reg(in.b)
			for j := range d {
				d[j] = a[j] ^ b[j]
			}
		case opAdd:
			b := ev.reg(in.b)
			var c uint64
			for j := range d {
				aj, bj := a[j], b[j]
				d[j] = aj ^ bj ^ c
				c = (aj & bj) | (c & (aj ^ bj))
			}
		case opSub:
			b := ev.reg(in.b)
			var bw uint64
			for j := range d {
				aj, bj := a[j], b[j]
				d[j] = aj ^ bj ^ bw
				bw = (^aj & bj) | (^(aj ^ bj) & bw)
			}
		case opMul:
			b := ev.reg(in.b)
			mulSliced(d, a, b)
		case opEq, opNe:
			b := ev.reg(in.b)
			var diff uint64
			for j := range a {
				diff |= a[j] ^ b[j]
			}
			if in.op == opEq {
				diff = ^diff
			}
			d[0] = diff
		case opUlt:
			// a < b iff a-b borrows out of the top plane.
			b := ev.reg(in.b)
			var bw uint64
			for j := range a {
				aj, bj := a[j], b[j]
				bw = (^aj & bj) | (^(aj ^ bj) & bw)
			}
			d[0] = bw
		}
	}
	var vals [64]uint64
	fromPlanes(ev.reg(p.out), &vals, uint(p.regWidth[p.out]))
	return append(out, vals[:blk.N()]...)
}

// mulSliced accumulates the shift-and-add product of a and b into d
// (d is a fresh register, never aliasing a or b). For each multiplier
// bit-plane b[i], the partial product a<<i is added into d under the
// per-lane condition mask b[i].
func mulSliced(d, a, b []uint64) {
	for j := range d {
		d[j] = 0
	}
	w := len(d)
	for i := 0; i < w; i++ {
		m := b[i]
		if m == 0 {
			continue
		}
		var c uint64
		for j := i; j < w; j++ {
			p := a[j-i] & m
			dj := d[j]
			d[j] = dj ^ p ^ c
			c = (dj & p) | (c & (dj ^ p))
		}
	}
}

// mulCSliced multiplies a by a compile-time constant, visiting only
// the constant's set bits — the generator corpus's small linear
// coefficients cost one or two shifted adds instead of a full
// multiply.
func mulCSliced(d, a []uint64, cval uint64) {
	for j := range d {
		d[j] = 0
	}
	w := len(d)
	for i := 0; i < w; i++ {
		if cval>>uint(i)&1 == 0 {
			continue
		}
		var c uint64
		for j := i; j < w; j++ {
			p := a[j-i]
			dj := d[j]
			d[j] = dj ^ p ^ c
			c = (dj & p) | (c & (dj ^ p))
		}
	}
}
