// Package eval evaluates MBA expressions over the modular ring Z/2^n
// and provides randomized equivalence testing, the workhorse check used
// by the test suite and by the Syntia-style synthesis baseline.
package eval

import (
	"fmt"
	"math/rand"
	"sort"

	"mbasolver/internal/expr"
)

// Mask returns the bit mask for an n-bit width; width 64 yields all
// ones. It panics for widths outside 1..64.
func Mask(width uint) uint64 {
	if width == 0 || width > 64 {
		panic(fmt.Sprintf("eval: invalid width %d", width))
	}
	if width == 64 {
		return ^uint64(0)
	}
	return (uint64(1) << width) - 1
}

// Env maps variable names to values.
type Env map[string]uint64

// Eval computes the value of e under env at the given bit width. All
// intermediate results are reduced mod 2^width, matching n-bit
// two's-complement machine arithmetic. Unbound variables evaluate to 0.
func Eval(e *expr.Expr, env Env, width uint) uint64 {
	m := Mask(width)
	return evalMasked(e, env, m)
}

func evalMasked(e *expr.Expr, env Env, m uint64) uint64 {
	switch e.Op {
	case expr.OpVar:
		return env[e.Name] & m
	case expr.OpConst:
		return e.Val & m
	case expr.OpNot:
		return ^evalMasked(e.X, env, m) & m
	case expr.OpNeg:
		return -evalMasked(e.X, env, m) & m
	case expr.OpAnd:
		return evalMasked(e.X, env, m) & evalMasked(e.Y, env, m)
	case expr.OpOr:
		return evalMasked(e.X, env, m) | evalMasked(e.Y, env, m)
	case expr.OpXor:
		return evalMasked(e.X, env, m) ^ evalMasked(e.Y, env, m)
	case expr.OpAdd:
		return (evalMasked(e.X, env, m) + evalMasked(e.Y, env, m)) & m
	case expr.OpSub:
		return (evalMasked(e.X, env, m) - evalMasked(e.Y, env, m)) & m
	case expr.OpMul:
		return (evalMasked(e.X, env, m) * evalMasked(e.Y, env, m)) & m
	}
	panic(fmt.Sprintf("eval: unknown operator %v", e.Op))
}

// cornerValues returns the adversarial corner list for a width — 0,
// 1, -1, 2^(n-1)-1, 2^(n-1) — deduplicated after masking. At small
// widths the masked corners collide (at width 1 the raw list is
// {0,1,1,0,1}), and keeping the duplicates would silently skew the
// corner draw toward 1.
func cornerValues(width uint) []uint64 {
	m := Mask(width)
	corners := []uint64{0, 1, m, m >> 1, (m >> 1) + 1}
	uniq := corners[:0]
	for _, c := range corners {
		c &= m
		dup := false
		for _, u := range uniq {
			if u == c {
				dup = true
				break
			}
		}
		if !dup {
			uniq = append(uniq, c)
		}
	}
	return uniq
}

// RandomEnv draws a value for each variable name uniformly from the
// n-bit range, mixing in a few adversarial corner values (0, 1, -1,
// 2^(n-1)) that commonly expose overflow-sensitive non-identities.
func RandomEnv(rng *rand.Rand, vars []string, width uint) Env {
	m := Mask(width)
	env := make(Env, len(vars))
	corners := cornerValues(width)
	for _, v := range vars {
		if rng.Intn(4) == 0 {
			env[v] = corners[rng.Intn(len(corners))]
		} else {
			env[v] = rng.Uint64() & m
		}
	}
	return env
}

// ProbablyEqual tests a = b on rounds random inputs at the given width.
// It returns false together with a witness environment as soon as the
// two expressions disagree; a true result means no counterexample was
// found (so equality is probable, not proven).
func ProbablyEqual(rng *rand.Rand, a, b *expr.Expr, width uint, rounds int) (bool, Env) {
	vars := unionVars(a, b)
	for i := 0; i < rounds; i++ {
		env := RandomEnv(rng, vars, width)
		if Eval(a, env, width) != Eval(b, env, width) {
			return false, env
		}
	}
	// Exhaustive corner sweep for up to 3 variables at tiny widths:
	// every variable in {0,1,-1} simultaneously.
	if len(vars) <= 3 {
		corner := []uint64{0, 1, Mask(width)}
		n := len(vars)
		total := 1
		for i := 0; i < n; i++ {
			total *= len(corner)
		}
		for c := 0; c < total; c++ {
			env := Env{}
			k := c
			for _, v := range vars {
				env[v] = corner[k%len(corner)]
				k /= len(corner)
			}
			if Eval(a, env, width) != Eval(b, env, width) {
				return false, env
			}
		}
	}
	return true, nil
}

func unionVars(a, b *expr.Expr) []string {
	set := map[string]bool{}
	for _, v := range expr.Vars(a) {
		set[v] = true
	}
	for _, v := range expr.Vars(b) {
		set[v] = true
	}
	vars := make([]string, 0, len(set))
	for v := range set {
		vars = append(vars, v)
	}
	sort.Strings(vars) // deterministic order keeps seeded runs reproducible
	return vars
}
