// Package parser implements a lexer and recursive-descent parser for
// the textual MBA expression syntax used throughout the MBA literature
// (and by the corpus files of this repository).
//
// The grammar follows C operator precedence:
//
//	expr   := xor  { "|" xor }
//	xor    := and  { "^" and }
//	and    := sum  { "&" sum }
//	sum    := term { ("+"|"-") term }
//	term   := unary { "*" unary }
//	unary  := ("~"|"-") unary | primary
//	primary:= ident | number | "(" expr ")"
//
// Numbers are decimal or 0x-prefixed hexadecimal, reduced mod 2^64.
// Identifiers are [A-Za-z_][A-Za-z0-9_]*.
package parser

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"mbasolver/internal/expr"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokOp // one of ~ & | ^ + - *
	tokLParen
	tokRParen
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

// SyntaxError describes a parse failure with its byte offset in the
// input string.
type SyntaxError struct {
	Pos int
	Msg string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("parse error at offset %d: %s", e.Pos, e.Msg)
}

type lexer struct {
	src string
	pos int
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) && isSpace(l.src[l.pos]) {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case c == '(':
		l.pos++
		return token{tokLParen, "(", start}, nil
	case c == ')':
		l.pos++
		return token{tokRParen, ")", start}, nil
	case strings.IndexByte("~&|^+-*", c) >= 0:
		l.pos++
		return token{tokOp, string(c), start}, nil
	case c >= '0' && c <= '9':
		l.pos++
		if c == '0' && l.pos < len(l.src) && (l.src[l.pos] == 'x' || l.src[l.pos] == 'X') {
			l.pos++
			for l.pos < len(l.src) && isHexDigit(l.src[l.pos]) {
				l.pos++
			}
			if l.pos == start+2 {
				return token{}, &SyntaxError{start, "malformed hexadecimal literal"}
			}
		} else {
			for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
				l.pos++
			}
		}
		return token{tokNumber, l.src[start:l.pos], start}, nil
	case isIdentStart(c):
		l.pos++
		for l.pos < len(l.src) && isIdentCont(l.src[l.pos]) {
			l.pos++
		}
		return token{tokIdent, l.src[start:l.pos], start}, nil
	}
	return token{}, &SyntaxError{start, fmt.Sprintf("unexpected character %q", rune(c))}
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }
func isHexDigit(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}
func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}
func isIdentCont(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}

type parser struct {
	lex lexer
	tok token
}

// Parse parses an MBA expression from its textual form.
func Parse(src string) (*expr.Expr, error) {
	p := &parser{lex: lexer{src: src}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, &SyntaxError{p.tok.pos, fmt.Sprintf("unexpected %q after expression", p.tok.text)}
	}
	return e, nil
}

// MustParse is Parse but panics on error; intended for tests, examples
// and statically known rule tables.
func MustParse(src string) *expr.Expr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) acceptOp(ops string) (string, bool) {
	if p.tok.kind == tokOp && strings.Contains(ops, p.tok.text) {
		return p.tok.text, true
	}
	return "", false
}

func (p *parser) parseOr() (*expr.Expr, error) {
	return p.parseLeftAssoc("|", p.parseXor)
}

func (p *parser) parseXor() (*expr.Expr, error) {
	return p.parseLeftAssoc("^", p.parseAnd)
}

func (p *parser) parseAnd() (*expr.Expr, error) {
	return p.parseLeftAssoc("&", p.parseSum)
}

func (p *parser) parseSum() (*expr.Expr, error) {
	return p.parseLeftAssoc("+-", p.parseTerm)
}

func (p *parser) parseTerm() (*expr.Expr, error) {
	return p.parseLeftAssoc("*", p.parseUnary)
}

func (p *parser) parseLeftAssoc(ops string, sub func() (*expr.Expr, error)) (*expr.Expr, error) {
	left, err := sub()
	if err != nil {
		return nil, err
	}
	for {
		op, ok := p.acceptOp(ops)
		if !ok {
			return left, nil
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := sub()
		if err != nil {
			return nil, err
		}
		left = expr.Binary(binOp(op), left, right)
	}
}

func binOp(s string) expr.Op {
	switch s {
	case "&":
		return expr.OpAnd
	case "|":
		return expr.OpOr
	case "^":
		return expr.OpXor
	case "+":
		return expr.OpAdd
	case "-":
		return expr.OpSub
	case "*":
		return expr.OpMul
	}
	panic("parser: unknown binary operator " + s)
}

func (p *parser) parseUnary() (*expr.Expr, error) {
	if op, ok := p.acceptOp("~-"); ok {
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if op == "~" {
			return expr.Not(x), nil
		}
		return expr.Neg(x), nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (*expr.Expr, error) {
	switch p.tok.kind {
	case tokIdent:
		e := expr.Var(p.tok.text)
		if err := p.advance(); err != nil {
			return nil, err
		}
		// Implicit multiplication of the form 2x or 2(x&y) is not in
		// the grammar; identifiers directly adjacent to another
		// primary are a syntax error caught by the caller.
		return e, nil
	case tokNumber:
		v, err := parseNumber(p.tok.text)
		if err != nil {
			return nil, &SyntaxError{p.tok.pos, err.Error()}
		}
		e := expr.Const(v)
		if err := p.advance(); err != nil {
			return nil, err
		}
		return e, nil
	case tokLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tokRParen {
			return nil, &SyntaxError{p.tok.pos, "expected ')'"}
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return e, nil
	case tokEOF:
		return nil, &SyntaxError{p.tok.pos, "unexpected end of input"}
	}
	return nil, &SyntaxError{p.tok.pos, fmt.Sprintf("unexpected token %q", p.tok.text)}
}

func parseNumber(s string) (uint64, error) {
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		return strconv.ParseUint(s[2:], 16, 64)
	}
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		// Values between 2^63 and 2^64-1 are fine; anything larger is
		// reduced mod 2^64 like C would.
		if ne, ok := err.(*strconv.NumError); ok && ne.Err == strconv.ErrRange {
			return reduceMod64(s)
		}
		return 0, err
	}
	return v, nil
}

func reduceMod64(s string) (uint64, error) {
	var v uint64
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("malformed number %q", s)
		}
		v = v*10 + uint64(c-'0')
	}
	return v, nil
}
