package parser

import (
	"testing"

	"mbasolver/internal/expr"
)

// FuzzParse exercises the lexer/parser for panics and checks the
// print-reparse fixpoint on every accepted input.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"x",
		"2*(x|y) - (~x&y) - (x&~y)",
		"(x&~y)*(~x&y) + (x&y)*(x|y)",
		"~(x-1)",
		"0xdeadbeef ^ 42",
		"x+-~y",
		"((((x))))",
		"18446744073709551615",
		"a|b^c&d+e*f",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		e, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		printed := e.String()
		e2, err := Parse(printed)
		if err != nil {
			t.Fatalf("printed form %q of %q does not reparse: %v", printed, src, err)
		}
		if !expr.Equal(e, e2) {
			t.Fatalf("print/reparse changed structure: %q -> %q -> %q", src, printed, e2.String())
		}
	})
}
