package parser

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"mbasolver/internal/eval"
	"mbasolver/internal/expr"
)

func TestParseBasics(t *testing.T) {
	cases := []struct{ in, want string }{
		{"x", "x"},
		{"42", "42"},
		{"0x10", "16"},
		{"x+y*z", "x+y*z"},
		{"(x+y)*z", "(x+y)*z"},
		{"x & y | z ^ w", "x&y|z^w"},
		{"~x", "~x"},
		{"-x", "-x"},
		{"--x", "-(-x)"},
		{"~~x", "~~x"},
		{"x - -y", "x--y"},
		{"2*(x|y) - (~x&y)", "2*(x|y)-(~x&y)"},
		{"  x  +  1 ", "x+1"},
		{"x+y+z", "x+y+z"},
		{"x-(y-z)", "x-(y-z)"},
	}
	for _, c := range cases {
		e, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		// Round trip: the printed form must parse back to the same tree.
		e2, err := Parse(e.String())
		if err != nil {
			t.Errorf("reparse of %q (-> %q): %v", c.in, e.String(), err)
			continue
		}
		if !expr.Equal(e, e2) {
			t.Errorf("round trip of %q: %q != %q", c.in, e, e2)
		}
	}
}

func TestPrecedenceMatchesC(t *testing.T) {
	// In C (and Python), & binds tighter than ^, which binds tighter
	// than |; all bind looser than + - *.
	e := MustParse("a|b^c&d+e*f")
	want := expr.Or(
		expr.Var("a"),
		expr.Xor(
			expr.Var("b"),
			expr.And(
				expr.Var("c"),
				expr.Add(expr.Var("d"), expr.Mul(expr.Var("e"), expr.Var("f"))))))
	if !expr.Equal(e, want) {
		t.Errorf("precedence parse: %v", e)
	}
}

func TestUnaryBinding(t *testing.T) {
	// ~x&y is (~x)&y, -x*y is (-x)*y.
	if got := MustParse("~x&y"); !expr.Equal(got, expr.And(expr.Not(expr.Var("x")), expr.Var("y"))) {
		t.Errorf("~x&y = %v", got)
	}
	if got := MustParse("-x*y"); !expr.Equal(got, expr.Mul(expr.Neg(expr.Var("x")), expr.Var("y"))) {
		t.Errorf("-x*y = %v", got)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"", "x+", "(x", "x)", "x y", "x++", "0x", "x & & y", "x$y", "1 2",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		} else if _, ok := err.(*SyntaxError); !ok {
			t.Errorf("Parse(%q) error is %T, want *SyntaxError", bad, err)
		}
	}
}

func TestSyntaxErrorPosition(t *testing.T) {
	_, err := Parse("x + $")
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if se.Pos != 4 {
		t.Errorf("error position %d, want 4", se.Pos)
	}
	if !strings.Contains(se.Error(), "offset 4") {
		t.Errorf("error text %q", se.Error())
	}
}

func TestBigConstants(t *testing.T) {
	e := MustParse("18446744073709551615") // 2^64-1
	if !e.IsConst(^uint64(0)) {
		t.Errorf("2^64-1 parsed as %v", e)
	}
	e = MustParse("18446744073709551616") // 2^64 wraps to 0
	if !e.IsConst(0) {
		t.Errorf("2^64 parsed as %v", e)
	}
	e = MustParse("0xdeadbeef")
	if !e.IsConst(0xdeadbeef) {
		t.Errorf("hex parsed as %v", e)
	}
}

// randomExpr builds a random tree for the round-trip property.
func randomExpr(rng *rand.Rand, depth int) *expr.Expr {
	if depth == 0 || rng.Intn(3) == 0 {
		switch rng.Intn(3) {
		case 0:
			return expr.Const(uint64(rng.Intn(100)))
		default:
			return expr.Var([]string{"x", "y", "z", "w"}[rng.Intn(4)])
		}
	}
	switch rng.Intn(8) {
	case 0:
		return expr.Not(randomExpr(rng, depth-1))
	case 1:
		return expr.Neg(randomExpr(rng, depth-1))
	default:
		ops := []expr.Op{expr.OpAnd, expr.OpOr, expr.OpXor, expr.OpAdd, expr.OpSub, expr.OpMul}
		return expr.Binary(ops[rng.Intn(len(ops))], randomExpr(rng, depth-1), randomExpr(rng, depth-1))
	}
}

// TestPrintParseRoundTripProperty: for arbitrary trees, print->parse
// preserves structure exactly (testing/quick drives the seeds).
func TestPrintParseRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := randomExpr(rng, 5)
		parsed, err := Parse(e.String())
		if err != nil {
			t.Logf("seed %d: %v on %q", seed, err, e.String())
			return false
		}
		if !expr.Equal(e, parsed) {
			t.Logf("seed %d: %q reparsed as %q", seed, e, parsed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestRoundTripPreservesSemantics: even if structure differed, the
// semantics must survive printing (this catches precedence bugs that
// happen to produce parseable output).
func TestRoundTripPreservesSemantics(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := randomExpr(rng, 4)
		parsed, err := Parse(e.String())
		if err != nil {
			return false
		}
		eq, _ := eval.ProbablyEqual(rng, e, parsed, 64, 30)
		return eq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
