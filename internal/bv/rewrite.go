package bv

import (
	"fmt"
	"strings"
)

// RewriteLevel selects how much word-level preprocessing a solver
// personality performs before bit-blasting. The three levels model the
// practical differences between the paper's solvers: Boolector's
// aggressive term rewriting is a large part of why it wins on linear
// MBA (paper Table 2), so the btorsim personality uses RewriteFull
// while z3sim and stpsim use lighter levels.
type RewriteLevel uint8

const (
	// RewriteNone performs no preprocessing.
	RewriteNone RewriteLevel = iota
	// RewriteBasic folds constants and applies unit/zero laws.
	RewriteBasic
	// RewriteFull additionally normalizes commutative operands, shares
	// structurally equal subterms and applies idempotence /
	// complementation / absorption laws.
	RewriteFull
)

// Rewriter performs word-level simplification with hash-consing. A
// Rewriter is single-goroutine; its term cache persists across calls so
// rewritten DAGs share nodes.
type Rewriter struct {
	level RewriteLevel
	cons  map[string]*Term
	memo  map[*Term]*Term
	keys  map[*Term]string
}

// NewRewriter returns a rewriter at the given level.
func NewRewriter(level RewriteLevel) *Rewriter {
	return &Rewriter{
		level: level,
		cons:  map[string]*Term{},
		memo:  map[*Term]*Term{},
		keys:  map[*Term]string{},
	}
}

// Rewrite returns a simplified term equivalent to t.
func (r *Rewriter) Rewrite(t *Term) *Term {
	if r.level == RewriteNone {
		return t
	}
	if out, ok := r.memo[t]; ok {
		return out
	}
	out := r.rewriteNode(t)
	r.memo[t] = out
	return out
}

func (r *Rewriter) rewriteNode(t *Term) *Term {
	if t.Op == Const || t.Op == Var {
		return r.intern(t)
	}
	args := make([]*Term, len(t.Args))
	for i, a := range t.Args {
		args[i] = r.Rewrite(a)
	}
	n := &Term{Op: t.Op, Width: t.Width, Args: args}

	if out := r.foldConst(n); out != nil {
		return r.intern(out)
	}
	if r.level >= RewriteFull {
		if out := r.algebraic(n); out != nil {
			return r.intern(out)
		}
		n = r.normalizeCommutative(n)
		if out := r.canonicalizeCone(n); out != nil {
			return out // already interned by the builder
		}
	} else if out := r.unitLaws(n); out != nil {
		return r.intern(out)
	}
	return r.intern(n)
}

// foldConst evaluates operators whose arguments are all constants.
func (r *Rewriter) foldConst(t *Term) *Term {
	for _, a := range t.Args {
		if a.Op != Const {
			return nil
		}
	}
	return NewConst(Eval(t, nil), t.Width)
}

// unitLaws applies neutral/absorbing element rules.
func (r *Rewriter) unitLaws(t *Term) *Term {
	if len(t.Args) != 2 {
		if t.Op == Not && t.Args[0].Op == Not {
			return t.Args[0].Args[0]
		}
		if t.Op == Neg && t.Args[0].Op == Neg {
			return t.Args[0].Args[0]
		}
		return nil
	}
	a, b := t.Args[0], t.Args[1]
	// Put the constant on the right for uniform handling.
	if a.Op == Const && b.Op != Const {
		a, b = b, a
	}
	if b.Op != Const {
		return nil
	}
	allOnes := NewConst(^uint64(0), t.Width).Val
	switch t.Op {
	case And:
		if b.Val == 0 {
			return NewConst(0, t.Width)
		}
		if b.Val == allOnes {
			return a
		}
	case Or:
		if b.Val == 0 {
			return a
		}
		if b.Val == allOnes {
			return NewConst(allOnes, t.Width)
		}
	case Xor:
		if b.Val == 0 {
			return a
		}
		if b.Val == allOnes {
			return Unary(Not, a)
		}
	case Add:
		if b.Val == 0 {
			return a
		}
	case Sub:
		if t.Args[1].Op == Const && t.Args[1].Val == 0 {
			return t.Args[0]
		}
	case Mul:
		if b.Val == 0 {
			return NewConst(0, t.Width)
		}
		if b.Val == 1 {
			return a
		}
	}
	return nil
}

// algebraic applies the stronger identity set of RewriteFull.
func (r *Rewriter) algebraic(t *Term) *Term {
	if out := r.unitLaws(t); out != nil {
		return out
	}
	if len(t.Args) != 2 {
		return nil
	}
	a, b := t.Args[0], t.Args[1]
	same := a == b || r.Key(a) == r.Key(b)
	complement := r.isComplement(a, b)
	switch t.Op {
	case And:
		if same {
			return a
		}
		if complement {
			return NewConst(0, t.Width)
		}
	case Or:
		if same {
			return a
		}
		if complement {
			return NewConst(^uint64(0), t.Width)
		}
	case Xor:
		if same {
			return NewConst(0, t.Width)
		}
		if complement {
			return NewConst(^uint64(0), t.Width)
		}
	case Sub:
		if same {
			return NewConst(0, t.Width)
		}
	case Eq:
		if same {
			return NewConst(1, 1)
		}
	case Ne:
		if same {
			return NewConst(0, 1)
		}
	}
	// x - y -> x + (-y) normalization exposes further sharing.
	if t.Op == Sub {
		return Binary(Add, a, Unary(Neg, b))
	}
	return nil
}

func (r *Rewriter) isComplement(a, b *Term) bool {
	if a.Op == Not && (a.Args[0] == b || r.Key(a.Args[0]) == r.Key(b)) {
		return true
	}
	if b.Op == Not && (b.Args[0] == a || r.Key(b.Args[0]) == r.Key(a)) {
		return true
	}
	return false
}

// normalizeCommutative orders the operands of commutative operators by
// their structural key so that hash-consing unifies x&y with y&x.
func (r *Rewriter) normalizeCommutative(t *Term) *Term {
	switch t.Op {
	case And, Or, Xor, Add, Mul, Eq, Ne:
		if r.Key(t.Args[1]) < r.Key(t.Args[0]) {
			return &Term{Op: t.Op, Width: t.Width, Args: []*Term{t.Args[1], t.Args[0]}}
		}
	}
	return t
}

// intern hash-conses the term so structurally equal terms are pointer
// equal, turning the tree into a DAG.
func (r *Rewriter) intern(t *Term) *Term {
	k := r.Key(t)
	if existing, ok := r.cons[k]; ok {
		return existing
	}
	r.cons[k] = t
	return t
}

// Key returns a canonical structural key for a term. Keys are cached
// per node pointer; terms are immutable so the cache never invalidates.
func (r *Rewriter) Key(t *Term) string {
	if k, ok := r.keys[t]; ok {
		return k
	}
	var b strings.Builder
	writeTermKey(&b, t)
	k := b.String()
	r.keys[t] = k
	return k
}

func writeTermKey(b *strings.Builder, t *Term) {
	switch t.Op {
	case Const:
		fmt.Fprintf(b, "#%d/%d", t.Val, t.Width)
	case Var:
		fmt.Fprintf(b, "%s/%d", t.Name, t.Width)
	default:
		b.WriteByte('(')
		b.WriteString(t.Op.String())
		for _, a := range t.Args {
			b.WriteByte(' ')
			writeTermKey(b, a)
		}
		b.WriteByte(')')
	}
}
