package bv

import (
	"testing"

	"mbasolver/internal/parser"
)

// TestInternDeterministic mirrors expr.Hash's determinism contract at
// the pointer level: interning the same tree twice, and interning an
// independently constructed structurally equal tree, yields the same
// canonical pointer.
func TestInternDeterministic(t *testing.T) {
	in := NewInterner()
	build := func() *Term {
		x, y := NewVar("x", 8), NewVar("y", 8)
		return Binary(Sub,
			Binary(Mul, NewConst(2, 8), Binary(Or, x, y)),
			Binary(Add,
				Binary(And, Unary(Not, x), y),
				Binary(And, x, Unary(Not, y))))
	}
	a, b := in.Intern(build()), in.Intern(build())
	if a != b {
		t.Fatal("structurally equal trees intern to different pointers")
	}
	if in.Intern(a) != a {
		t.Fatal("re-interning a canonical node is not the identity")
	}
	// Builder API and Intern-of-tree agree.
	c := in.Binary(Sub,
		in.Binary(Mul, in.Const(2, 8), in.Binary(Or, in.Var("x", 8), in.Var("y", 8))),
		in.Binary(Add,
			in.Binary(And, in.Unary(Not, in.Var("x", 8)), in.Var("y", 8)),
			in.Binary(And, in.Var("x", 8), in.Unary(Not, in.Var("y", 8)))))
	if c != a {
		t.Fatal("builder API and Intern disagree on the canonical node")
	}
}

// TestInternNoAliasing: every field of a node lives in its own key
// slot, so near-miss pairs that a naive string concatenation could
// alias stay distinct.
func TestInternNoAliasing(t *testing.T) {
	in := NewInterner()
	pairs := [][2]*Term{
		{in.Var("x", 8), in.Var("x", 16)},     // same name, different width
		{in.Const(1, 8), in.Const(1, 16)},     // same value, different width
		{in.Var("1", 8), in.Const(1, 8)},      // name "1" vs value 1
		{in.Var("ab", 8), in.Var("a", 8)},     // prefix names
		{in.Unary(Not, in.Var("x", 8)), in.Unary(Neg, in.Var("x", 8))},
		{in.Binary(Sub, in.Var("x", 8), in.Var("y", 8)),
			in.Binary(Sub, in.Var("y", 8), in.Var("x", 8))}, // operand order matters
		{in.Binary(And, in.Var("a", 8), in.Binary(And, in.Var("b", 8), in.Var("c", 8))),
			in.Binary(And, in.Binary(And, in.Var("a", 8), in.Var("b", 8)), in.Var("c", 8))},
	}
	for i, p := range pairs {
		if p[0] == p[1] {
			t.Errorf("pair %d: %s and %s must not intern to the same node", i, p[0], p[1])
		}
	}
}

// TestInternConstReduction: constants are reduced mod 2^width before
// keying, so 0x1ff and 0xff intern to the same width-8 node.
func TestInternConstReduction(t *testing.T) {
	in := NewInterner()
	if in.Const(0x1ff, 8) != in.Const(0xff, 8) {
		t.Fatal("width-reduced constants must share a node")
	}
}

// TestInternCollisionFree mirrors expr's TestHashCollisionFree: across
// a systematically enumerated pool of small terms, structurally
// distinct terms get distinct pointers and structural repeats collapse.
func TestInternCollisionFree(t *testing.T) {
	in := NewInterner()
	var leaves []*Term
	for _, v := range []string{"x", "y", "z"} {
		leaves = append(leaves, in.Var(v, 8))
	}
	for _, c := range []uint64{0, 1, 2, 255} {
		leaves = append(leaves, in.Const(c, 8))
	}
	ops := []Op{And, Or, Xor, Add, Sub, Mul}
	var depth1 []*Term
	for _, op := range ops {
		for _, x := range leaves {
			for _, y := range leaves {
				depth1 = append(depth1, in.Binary(op, x, y))
			}
		}
	}
	pool := append(append([]*Term{}, leaves...), depth1...)
	for i := 0; i+1 < len(depth1); i += 5 {
		pool = append(pool, in.Binary(Xor, depth1[i], depth1[i+1]))
		pool = append(pool, in.Unary(Not, depth1[i]))
	}

	// Distinct structure (by canonical rewriter key, the existing
	// ground truth for structural equality) implies distinct pointer,
	// and equal structure implies equal pointer.
	rw := NewRewriter(RewriteNone)
	byKey := map[string]*Term{}
	for _, term := range pool {
		k := rw.Key(term)
		if prev, ok := byKey[k]; ok {
			if prev != term {
				t.Fatalf("structural repeat %q interned to two nodes", k)
			}
			continue
		}
		byKey[k] = term
	}
	if len(byKey) < 250 {
		t.Fatalf("collision corpus too small: %d distinct forms", len(byKey))
	}
	stats := in.Stats()
	if stats.Terms != len(byKey) {
		t.Fatalf("interner holds %d terms, want %d distinct forms", stats.Terms, len(byKey))
	}
	if stats.Hits == 0 || stats.Misses == 0 {
		t.Fatalf("implausible stats: %+v", stats)
	}
}

// TestInternFromExprEvaluates: the interned translation of an
// expression computes the same function as the plain translation, and
// repeated subterms share pointers (the whole point).
func TestInternFromExprEvaluates(t *testing.T) {
	in := NewInterner()
	e := parser.MustParse("(x&~y)*(~x&y) + (x&y)*(x|y) - ((x&~y)*(~x&y))")
	plain := FromExpr(e, 8)
	interned := in.FromExpr(e, 8)
	for x := uint64(0); x < 8; x++ {
		for y := uint64(0); y < 8; y++ {
			env := map[string]uint64{"x": x, "y": y}
			if Eval(plain, env) != Eval(interned, env) {
				t.Fatalf("interned term diverges at x=%d y=%d", x, y)
			}
		}
	}
	if Size(interned) >= Size(plain) {
		t.Fatalf("interning did not share repeated subterms: %d >= %d",
			Size(interned), Size(plain))
	}
	// A second translation of the same source is pointer-identical.
	if in.FromExpr(parser.MustParse(e.String()), 8) != interned {
		t.Fatal("re-translating the same expression missed the intern table")
	}
}
