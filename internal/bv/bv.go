// Package bv defines the word-level bitvector term IR shared by the
// SMT solver personalities: fixed-width terms over the MBA operator
// set plus equality/disequality predicates, with constructors,
// evaluation (for differential testing against the bit-blasted
// circuit) and conversion from MBA expression trees.
package bv

import (
	"fmt"

	"mbasolver/internal/eval"
	"mbasolver/internal/expr"
)

// Op enumerates term operators.
type Op uint8

const (
	Const Op = iota // width-n constant
	Var             // width-n free variable
	Not             // bitwise complement
	Neg             // two's-complement negation
	And
	Or
	Xor
	Add
	Sub
	Mul
	Eq  // width-1 result: arguments equal
	Ne  // width-1 result: arguments differ
	Ult // width-1 result: unsigned less-than
)

func (op Op) String() string {
	switch op {
	case Const:
		return "const"
	case Var:
		return "var"
	case Not:
		return "bvnot"
	case Neg:
		return "bvneg"
	case And:
		return "bvand"
	case Or:
		return "bvor"
	case Xor:
		return "bvxor"
	case Add:
		return "bvadd"
	case Sub:
		return "bvsub"
	case Mul:
		return "bvmul"
	case Eq:
		return "="
	case Ne:
		return "distinct"
	case Ult:
		return "bvult"
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Term is a bitvector term. Terms are immutable after construction and
// may share subterms.
type Term struct {
	Op    Op
	Width uint // result width in bits (1 for predicates)
	Name  string
	Val   uint64
	Args  []*Term
}

// NewConst returns a width-bit constant (value reduced mod 2^width).
func NewConst(v uint64, width uint) *Term {
	return &Term{Op: Const, Width: width, Val: v & eval.Mask(width)}
}

// NewVar returns a width-bit free variable.
func NewVar(name string, width uint) *Term {
	return &Term{Op: Var, Width: width, Name: name}
}

// Unary builds bvnot or bvneg.
func Unary(op Op, a *Term) *Term {
	if op != Not && op != Neg {
		panic("bv: Unary with non-unary op " + op.String())
	}
	return &Term{Op: op, Width: a.Width, Args: []*Term{a}}
}

// Binary builds a bitwise/arithmetic binary term; both arguments must
// have the same width.
func Binary(op Op, a, b *Term) *Term {
	if op < And || op > Mul {
		panic("bv: Binary with non-binary op " + op.String())
	}
	checkSameWidth(a, b)
	return &Term{Op: op, Width: a.Width, Args: []*Term{a, b}}
}

// Predicate builds =, distinct or bvult over same-width arguments; the
// result has width 1.
func Predicate(op Op, a, b *Term) *Term {
	if op != Eq && op != Ne && op != Ult {
		panic("bv: Predicate with non-predicate op " + op.String())
	}
	checkSameWidth(a, b)
	return &Term{Op: op, Width: 1, Args: []*Term{a, b}}
}

func checkSameWidth(a, b *Term) {
	if a.Width != b.Width {
		panic(fmt.Sprintf("bv: width mismatch %d vs %d", a.Width, b.Width))
	}
}

// FromExpr translates an MBA expression into a bitvector term at the
// given width.
func FromExpr(e *expr.Expr, width uint) *Term {
	switch e.Op {
	case expr.OpVar:
		return NewVar(e.Name, width)
	case expr.OpConst:
		return NewConst(e.Val, width)
	case expr.OpNot:
		return Unary(Not, FromExpr(e.X, width))
	case expr.OpNeg:
		return Unary(Neg, FromExpr(e.X, width))
	}
	x, y := FromExpr(e.X, width), FromExpr(e.Y, width)
	switch e.Op {
	case expr.OpAnd:
		return Binary(And, x, y)
	case expr.OpOr:
		return Binary(Or, x, y)
	case expr.OpXor:
		return Binary(Xor, x, y)
	case expr.OpAdd:
		return Binary(Add, x, y)
	case expr.OpSub:
		return Binary(Sub, x, y)
	case expr.OpMul:
		return Binary(Mul, x, y)
	}
	panic(fmt.Sprintf("bv: unsupported expression operator %v", e.Op))
}

// Eval computes the term's value under env (predicates yield 0 or 1).
func Eval(t *Term, env map[string]uint64) uint64 {
	m := eval.Mask(t.Width)
	switch t.Op {
	case Const:
		return t.Val & m
	case Var:
		return env[t.Name] & m
	case Not:
		return ^Eval(t.Args[0], env) & m
	case Neg:
		return -Eval(t.Args[0], env) & m
	case And:
		return Eval(t.Args[0], env) & Eval(t.Args[1], env)
	case Or:
		return Eval(t.Args[0], env) | Eval(t.Args[1], env)
	case Xor:
		return Eval(t.Args[0], env) ^ Eval(t.Args[1], env)
	case Add:
		return (Eval(t.Args[0], env) + Eval(t.Args[1], env)) & m
	case Sub:
		return (Eval(t.Args[0], env) - Eval(t.Args[1], env)) & m
	case Mul:
		return (Eval(t.Args[0], env) * Eval(t.Args[1], env)) & m
	case Eq:
		if Eval(t.Args[0], env) == Eval(t.Args[1], env) {
			return 1
		}
		return 0
	case Ne:
		if Eval(t.Args[0], env) != Eval(t.Args[1], env) {
			return 1
		}
		return 0
	case Ult:
		if Eval(t.Args[0], env) < Eval(t.Args[1], env) {
			return 1
		}
		return 0
	}
	panic("bv: unknown op in Eval")
}

// Vars returns the set of variable names in t. Shared subterms are
// visited once, so the walk is linear in the DAG size even on heavily
// hash-consed terms.
func Vars(t *Term) map[string]uint {
	out := map[string]uint{}
	seen := map[*Term]bool{}
	var walk func(*Term)
	walk = func(n *Term) {
		if seen[n] {
			return
		}
		seen[n] = true
		if n.Op == Var {
			out[n.Name] = n.Width
			return
		}
		for _, a := range n.Args {
			walk(a)
		}
	}
	walk(t)
	return out
}

// Size returns the number of term nodes counting shared subterms once.
func Size(t *Term) int {
	seen := map[*Term]bool{}
	var walk func(*Term) int
	walk = func(n *Term) int {
		if seen[n] {
			return 0
		}
		seen[n] = true
		c := 1
		for _, a := range n.Args {
			c += walk(a)
		}
		return c
	}
	return walk(t)
}

// String renders the term in SMT-LIB-like prefix syntax.
func (t *Term) String() string {
	switch t.Op {
	case Const:
		return fmt.Sprintf("#x%x[%d]", t.Val, t.Width)
	case Var:
		return t.Name
	}
	s := "(" + t.Op.String()
	for _, a := range t.Args {
		s += " " + a.String()
	}
	return s + ")"
}

// ToExpr converts a term back to an MBA expression tree. It reports
// false when the term contains operators outside the MBA fragment
// (predicates, bvult) or mixed widths.
func ToExpr(t *Term) (*expr.Expr, bool) {
	switch t.Op {
	case Const:
		return expr.Const(t.Val), true
	case Var:
		return expr.Var(t.Name), true
	case Not, Neg:
		x, ok := ToExpr(t.Args[0])
		if !ok {
			return nil, false
		}
		if t.Op == Not {
			return expr.Not(x), true
		}
		return expr.Neg(x), true
	case And, Or, Xor, Add, Sub, Mul:
		x, okx := ToExpr(t.Args[0])
		y, oky := ToExpr(t.Args[1])
		if !okx || !oky {
			return nil, false
		}
		var op expr.Op
		switch t.Op {
		case And:
			op = expr.OpAnd
		case Or:
			op = expr.OpOr
		case Xor:
			op = expr.OpXor
		case Add:
			op = expr.OpAdd
		case Sub:
			op = expr.OpSub
		default:
			op = expr.OpMul
		}
		return expr.Binary(op, x, y), true
	}
	return nil, false
}
