package bv

import (
	"math/rand"
	"testing"

	"mbasolver/internal/eval"
	"mbasolver/internal/expr"
	"mbasolver/internal/parser"
)

func TestFromExprToExprRoundTrip(t *testing.T) {
	for _, src := range []string{
		"x", "42", "~x", "-x", "x&y", "x|y", "x^y", "x+y", "x-y", "x*y",
		"(x&~y)*(~x&y) + (x&y)*(x|y)",
		"2*(x|y) - (~x&y) - (x&~y)",
	} {
		e := parser.MustParse(src)
		term := FromExpr(e, 16)
		back, ok := ToExpr(term)
		if !ok {
			t.Errorf("ToExpr(%q) failed", src)
			continue
		}
		if !expr.Equal(e, back) {
			t.Errorf("round trip %q -> %q", src, back)
		}
	}
}

func TestToExprRejectsPredicates(t *testing.T) {
	p := Predicate(Eq, NewVar("x", 8), NewVar("y", 8))
	if _, ok := ToExpr(p); ok {
		t.Error("ToExpr accepted a predicate")
	}
}

func TestEvalAgainstExprEval(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	srcs := []string{
		"x*y + (x&~y) - 3",
		"~(x^y)|(x+1)",
		"-x*-y",
	}
	for _, src := range srcs {
		e := parser.MustParse(src)
		for _, width := range []uint{1, 7, 16, 64} {
			term := FromExpr(e, width)
			for round := 0; round < 20; round++ {
				env := map[string]uint64{"x": rng.Uint64(), "y": rng.Uint64()}
				want := eval.Eval(e, eval.Env(env), width)
				if got := Eval(term, env); got != want {
					t.Fatalf("%q at width %d: bv.Eval=%#x expr eval=%#x (env %v)",
						src, width, got, want, env)
				}
			}
		}
	}
}

func TestPredicateEval(t *testing.T) {
	x, y := NewVar("x", 8), NewVar("y", 8)
	cases := []struct {
		t    *Term
		env  map[string]uint64
		want uint64
	}{
		{Predicate(Eq, x, y), map[string]uint64{"x": 5, "y": 5}, 1},
		{Predicate(Eq, x, y), map[string]uint64{"x": 5, "y": 6}, 0},
		{Predicate(Ne, x, y), map[string]uint64{"x": 5, "y": 6}, 1},
		{Predicate(Ult, x, y), map[string]uint64{"x": 5, "y": 6}, 1},
		{Predicate(Ult, x, y), map[string]uint64{"x": 6, "y": 5}, 0},
	}
	for i, c := range cases {
		if got := Eval(c.t, c.env); got != c.want {
			t.Errorf("case %d: Eval = %d, want %d", i, got, c.want)
		}
	}
}

func TestWidthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Binary(Add, NewVar("x", 8), NewVar("y", 16))
}

func TestVarsAndSize(t *testing.T) {
	term := FromExpr(parser.MustParse("x + y*x"), 8)
	vars := Vars(term)
	if len(vars) != 2 || vars["x"] != 8 || vars["y"] != 8 {
		t.Errorf("Vars = %v", vars)
	}
	if Size(term) < 4 {
		t.Errorf("Size = %d", Size(term))
	}
}

func TestRewriterFoldsAndUnifies(t *testing.T) {
	rw := NewRewriter(RewriteFull)
	x := NewVar("x", 8)
	y := NewVar("y", 8)

	cases := []struct {
		in   *Term
		want string // expected rewritten String() or "" for same-pointer checks
	}{
		{Binary(Add, NewConst(3, 8), NewConst(4, 8)), "#x7[8]"},
		{Binary(And, x, NewConst(0, 8)), "#x0[8]"},
		{Binary(Or, x, NewConst(0, 8)), "x"},
		{Binary(Mul, x, NewConst(1, 8)), "x"},
		{Binary(Xor, x, x), "#x0[8]"},
		{Binary(And, x, Unary(Not, x)), "#x0[8]"},
		{Binary(Or, x, Unary(Not, x)), "#xff[8]"},
		{Unary(Not, Unary(Not, x)), "x"},
	}
	for i, c := range cases {
		got := rw.Rewrite(c.in)
		if got.String() != c.want {
			t.Errorf("case %d: Rewrite(%v) = %v, want %s", i, c.in, got, c.want)
		}
	}

	// Commutative normalization unifies x&y with y&x by pointer.
	a := rw.Rewrite(Binary(And, x, y))
	b := rw.Rewrite(Binary(And, y, x))
	if a != b {
		t.Error("hash-consing failed to unify x&y with y&x")
	}
}

func TestRewritePreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	var gen func(d int) *Term
	vars := []*Term{NewVar("x", 8), NewVar("y", 8)}
	gen = func(d int) *Term {
		if d == 0 || rng.Intn(3) == 0 {
			if rng.Intn(3) == 0 {
				return NewConst(rng.Uint64(), 8)
			}
			return vars[rng.Intn(2)]
		}
		switch rng.Intn(9) {
		case 0:
			return Unary(Not, gen(d-1))
		case 1:
			return Unary(Neg, gen(d-1))
		default:
			ops := []Op{And, Or, Xor, Add, Sub, Mul}
			return Binary(ops[rng.Intn(len(ops))], gen(d-1), gen(d-1))
		}
	}
	for _, level := range []RewriteLevel{RewriteBasic, RewriteFull} {
		rw := NewRewriter(level)
		for i := 0; i < 300; i++ {
			in := gen(4)
			out := rw.Rewrite(in)
			for round := 0; round < 8; round++ {
				env := map[string]uint64{"x": rng.Uint64() & 0xff, "y": rng.Uint64() & 0xff}
				if Eval(in, env) != Eval(out, env) {
					t.Fatalf("level %d: rewrite broke semantics: %v -> %v at %v",
						level, in, out, env)
				}
			}
		}
	}
}

func TestRewriteNoneIsIdentity(t *testing.T) {
	rw := NewRewriter(RewriteNone)
	in := Binary(Add, NewConst(1, 8), NewConst(1, 8))
	if rw.Rewrite(in) != in {
		t.Error("RewriteNone changed the term")
	}
}

func TestConeCanonicalizationUnifiesSpellings(t *testing.T) {
	// (x|~(~y&~x)) computes x|y; RewriteFull must unify the two
	// spellings to the same pointer.
	rw := NewRewriter(RewriteFull)
	x, y := NewVar("x", 8), NewVar("y", 8)
	ugly := Binary(Or, x, Unary(Not, Binary(And, Unary(Not, y), Unary(Not, x))))
	clean := Binary(Or, x, y)
	a, b := rw.Rewrite(ugly), rw.Rewrite(clean)
	if a != b {
		t.Errorf("cone canonicalization failed: %v vs %v", a, b)
	}
}

func TestConeCanonicalizationSemantics(t *testing.T) {
	// Random bitwise cones over arithmetic leaves must keep semantics.
	rng := rand.New(rand.NewSource(12))
	leaves := []*Term{
		NewVar("x", 8),
		NewVar("y", 8),
		Binary(Add, NewVar("x", 8), NewVar("y", 8)),
	}
	var gen func(d int) *Term
	gen = func(d int) *Term {
		if d == 0 || rng.Intn(3) == 0 {
			return leaves[rng.Intn(len(leaves))]
		}
		switch rng.Intn(4) {
		case 0:
			return Unary(Not, gen(d-1))
		default:
			ops := []Op{And, Or, Xor}
			return Binary(ops[rng.Intn(3)], gen(d-1), gen(d-1))
		}
	}
	rw := NewRewriter(RewriteFull)
	for i := 0; i < 200; i++ {
		in := gen(4)
		out := rw.Rewrite(in)
		for round := 0; round < 6; round++ {
			env := map[string]uint64{"x": rng.Uint64() & 0xff, "y": rng.Uint64() & 0xff}
			if Eval(in, env) != Eval(out, env) {
				t.Fatalf("cone rewrite broke semantics: %v -> %v at %v", in, out, env)
			}
		}
	}
}
