package bv

import (
	"mbasolver/internal/eval"
	"mbasolver/internal/expr"
)

// Hash-consed interning for terms. An Interner guarantees that
// structurally equal terms built through it are pointer-equal, which
// turns trees into DAGs at construction time and — more importantly —
// makes pointer-keyed caches downstream (the Rewriter's memo, the
// Blaster's per-node encoding cache and gate hash) hit across queries,
// not just within one. The incremental smt.Context keeps one Interner
// per personality so a corpus of structurally overlapping queries is
// rewritten and bit-blasted once per distinct subterm.
//
// Unlike the Rewriter's string-keyed cons table, the interner key is a
// small comparable struct whose child slots are the (already interned)
// argument pointers, so interning a node is O(1) after its children —
// no canonical string is ever built.

// internKey identifies a term node up to structural equality, given
// that argument pointers are themselves interned. The struct is
// comparable, so aliasing between e.g. Var("ab") and Var("a")+garbage
// is impossible by construction — every field lives in its own slot.
type internKey struct {
	op    Op
	width uint
	name  string
	val   uint64
	a, b  *Term
}

// InternStats reports interning reuse counters.
type InternStats struct {
	Hits   int64 // nodes served from the table
	Misses int64 // fresh nodes entered into the table
	Terms  int   // distinct live terms (table size)
}

// Interner hash-conses terms. It is single-goroutine, like the
// Rewriter; share one per solver context, not across goroutines.
type Interner struct {
	table map[internKey]*Term
	memo  map[*Term]*Term // Intern() results for foreign nodes
	hits  int64
	miss  int64
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{
		table: map[internKey]*Term{},
		memo:  map[*Term]*Term{},
	}
}

// Stats returns the interner's reuse counters.
func (in *Interner) Stats() InternStats {
	return InternStats{Hits: in.hits, Misses: in.miss, Terms: len(in.table)}
}

// Len returns the number of distinct interned terms.
func (in *Interner) Len() int { return len(in.table) }

// get returns the canonical node for key, entering cand if absent.
func (in *Interner) get(key internKey, cand func() *Term) *Term {
	if t, ok := in.table[key]; ok {
		in.hits++
		return t
	}
	in.miss++
	t := cand()
	in.table[key] = t
	return t
}

// Const returns the interned width-bit constant (value reduced mod
// 2^width).
func (in *Interner) Const(v uint64, width uint) *Term {
	v &= eval.Mask(width)
	return in.get(internKey{op: Const, width: width, val: v},
		func() *Term { return NewConst(v, width) })
}

// Var returns the interned width-bit free variable.
func (in *Interner) Var(name string, width uint) *Term {
	return in.get(internKey{op: Var, width: width, name: name},
		func() *Term { return NewVar(name, width) })
}

// Unary returns the interned bvnot/bvneg over an interned argument.
func (in *Interner) Unary(op Op, a *Term) *Term {
	a = in.Intern(a)
	return in.get(internKey{op: op, width: a.Width, a: a},
		func() *Term { return Unary(op, a) })
}

// Binary returns the interned binary term over interned arguments.
func (in *Interner) Binary(op Op, a, b *Term) *Term {
	a, b = in.Intern(a), in.Intern(b)
	return in.get(internKey{op: op, width: a.Width, a: a, b: b},
		func() *Term { return Binary(op, a, b) })
}

// Predicate returns the interned =, distinct or bvult predicate over
// interned arguments.
func (in *Interner) Predicate(op Op, a, b *Term) *Term {
	a, b = in.Intern(a), in.Intern(b)
	return in.get(internKey{op: op, width: 1, a: a, b: b},
		func() *Term { return Predicate(op, a, b) })
}

// Intern returns the canonical interned node for t, rebuilding the
// term bottom-up so every reachable node is interned. Results are
// memoized per input pointer, so re-interning a term already produced
// by this interner — or any foreign tree seen before — is O(1).
func (in *Interner) Intern(t *Term) *Term {
	if out, ok := in.memo[t]; ok {
		return out
	}
	var out *Term
	switch t.Op {
	case Const:
		out = in.Const(t.Val, t.Width)
	case Var:
		out = in.Var(t.Name, t.Width)
	case Not, Neg:
		out = in.Unary(t.Op, in.Intern(t.Args[0]))
	case Eq, Ne, Ult:
		out = in.Predicate(t.Op, in.Intern(t.Args[0]), in.Intern(t.Args[1]))
	default:
		out = in.Binary(t.Op, in.Intern(t.Args[0]), in.Intern(t.Args[1]))
	}
	in.memo[t] = out
	in.memo[out] = out // canonical nodes map to themselves
	return out
}

// FromExpr translates an MBA expression directly into an interned term
// at the given width — the interned analogue of FromExpr.
func (in *Interner) FromExpr(e *expr.Expr, width uint) *Term {
	switch e.Op {
	case expr.OpVar:
		return in.Var(e.Name, width)
	case expr.OpConst:
		return in.Const(e.Val, width)
	case expr.OpNot:
		return in.Unary(Not, in.FromExpr(e.X, width))
	case expr.OpNeg:
		return in.Unary(Neg, in.FromExpr(e.X, width))
	}
	x, y := in.FromExpr(e.X, width), in.FromExpr(e.Y, width)
	switch e.Op {
	case expr.OpAnd:
		return in.Binary(And, x, y)
	case expr.OpOr:
		return in.Binary(Or, x, y)
	case expr.OpXor:
		return in.Binary(Xor, x, y)
	case expr.OpAdd:
		return in.Binary(Add, x, y)
	case expr.OpSub:
		return in.Binary(Sub, x, y)
	case expr.OpMul:
		return in.Binary(Mul, x, y)
	}
	panic("bv: unsupported expression operator in Interner.FromExpr")
}
