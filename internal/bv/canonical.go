package bv

import (
	"fmt"

	"mbasolver/internal/eval"
	"mbasolver/internal/expr"
	"mbasolver/internal/truthtable"
)

// Two-level bitwise-cone canonicalization, the bv-level analogue of
// Boolector's AIG rewriting (Brummayer & Biere, "Local Two-Level
// And-Inverter Graph Rewriting"): a maximal cone of bitwise operators
// over at most three distinct leaves is replaced by the minimal-size
// expression computing the same boolean function. This unifies
// different spellings of the same function ((x|~(~y&~x)) and x|y
// become pointer-equal after hash-consing), which shrinks the blasted
// CNF and lets the word-level arithmetic normalization match more
// atoms. Only RewriteFull (the btorsim personality) performs it —
// it is a large part of why Boolector leads on MBA in the paper's
// Table 2.

// maxConeLeaves bounds the cone analysis; the minimal-expression
// synthesis is complete for <= 3 inputs.
const maxConeLeaves = 3

// canonicalizeCone rewrites a bitwise-rooted term to its canonical
// minimal form when profitable. Returns nil when not applicable.
func (r *Rewriter) canonicalizeCone(t *Term) *Term {
	switch t.Op {
	case Not, And, Or, Xor:
	default:
		return nil
	}
	if t.Op == Not && t.Width == 1 {
		// Boolean connectives over predicates are not a bitwise cone.
		return nil
	}
	leaves := make([]*Term, 0, maxConeLeaves)
	if !r.collectConeLeaves(t, &leaves) {
		return nil
	}
	if len(leaves) == 0 {
		return nil
	}

	// Truth table of the cone: evaluate with each leaf set to 0 or the
	// all-ones word; bitwise operators map such inputs to 0/all-ones.
	names := make([]string, len(leaves))
	for i := range leaves {
		names[i] = fmt.Sprintf("l%d", i)
	}
	mask := eval.Mask(t.Width)
	n := 1 << len(leaves)
	var tt uint64
	for a := 0; a < n; a++ {
		env := map[string]uint64{}
		for j, name := range names {
			if a>>uint(j)&1 == 1 {
				env[name] = mask
			}
		}
		if evalCone(t, leaves, env, names) != 0 {
			tt |= 1 << uint(a)
		}
	}

	canonical := truthtable.MinimalBoolExpr(tt, names)
	if canonical == nil {
		return nil
	}
	out := r.exprOverLeaves(canonical, names, leaves, t.Width)
	if Size(out) < Size(t) {
		return out
	}
	return nil
}

// collectConeLeaves gathers the distinct non-bitwise leaves of a
// bitwise cone (variables, constants or arithmetic subterms). It
// reports false when the cone has too many leaves.
func (r *Rewriter) collectConeLeaves(t *Term, leaves *[]*Term) bool {
	switch t.Op {
	case Not, And, Or, Xor:
		for _, a := range t.Args {
			if !r.collectConeLeaves(a, leaves) {
				return false
			}
		}
		return true
	}
	for _, l := range *leaves {
		if l == t || r.Key(l) == r.Key(t) {
			return true
		}
	}
	if len(*leaves) >= maxConeLeaves {
		return false
	}
	*leaves = append(*leaves, t)
	return true
}

// evalCone evaluates the cone with each leaf bound to env[name]; the
// cone contains only bitwise operators above the leaves.
func evalCone(t *Term, leaves []*Term, env map[string]uint64, names []string) uint64 {
	for i, l := range leaves {
		if t == l {
			return env[names[i]]
		}
	}
	switch t.Op {
	case Not:
		return ^evalCone(t.Args[0], leaves, env, names) & eval.Mask(t.Width)
	case And:
		return evalCone(t.Args[0], leaves, env, names) & evalCone(t.Args[1], leaves, env, names)
	case Or:
		return evalCone(t.Args[0], leaves, env, names) | evalCone(t.Args[1], leaves, env, names)
	case Xor:
		return evalCone(t.Args[0], leaves, env, names) ^ evalCone(t.Args[1], leaves, env, names)
	}
	// Leaf comparison above is by pointer; hash-consing guarantees
	// pointer equality for equal keys, but be conservative otherwise.
	for i, l := range leaves {
		if sameKeyShallow(t, l) {
			return env[names[i]]
		}
	}
	panic("bv: non-bitwise node inside cone evaluation")
}

func sameKeyShallow(a, b *Term) bool {
	if a.Op != b.Op || a.Width != b.Width {
		return false
	}
	switch a.Op {
	case Var:
		return a.Name == b.Name
	case Const:
		return a.Val == b.Val
	}
	return false
}

// exprOverLeaves instantiates a synthesized boolean expression with
// the cone's leaf terms.
func (r *Rewriter) exprOverLeaves(e *expr.Expr, names []string, leaves []*Term, width uint) *Term {
	byName := make(map[string]*Term, len(names))
	for i, n := range names {
		byName[n] = leaves[i]
	}
	var build func(*expr.Expr) *Term
	build = func(x *expr.Expr) *Term {
		switch x.Op {
		case expr.OpVar:
			return byName[x.Name]
		case expr.OpConst:
			return r.intern(NewConst(x.Val, width))
		case expr.OpNot:
			return r.intern(Unary(Not, build(x.X)))
		case expr.OpAnd:
			return r.intern(r.normalizeCommutative(Binary(And, build(x.X), build(x.Y))))
		case expr.OpOr:
			return r.intern(r.normalizeCommutative(Binary(Or, build(x.X), build(x.Y))))
		case expr.OpXor:
			return r.intern(r.normalizeCommutative(Binary(Xor, build(x.X), build(x.Y))))
		}
		panic("bv: unexpected operator in synthesized boolean expression")
	}
	return build(e)
}
