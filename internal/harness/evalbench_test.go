package harness

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestEvalBenchSmoke runs a small eval-engine benchmark end to end:
// every engine covers the full corpus, no bytecode engine ever
// disagrees with the tree interpreter, and the report serializes.
func TestEvalBenchSmoke(t *testing.T) {
	cfg := EvalBenchConfig{Samples: 4, Points: 256, Width: 64}
	report := RunEvalBench(cfg)

	if report.Mismatches != 0 {
		t.Fatalf("bytecode engines disagreed with the tree interpreter on %d points", report.Mismatches)
	}
	if report.Exprs != 12 {
		t.Fatalf("corpus size %d, want 12 (4 per category)", report.Exprs)
	}
	if len(report.Runs) != 4 {
		t.Fatalf("%d engine runs, want tree+bytecode+bitsliced+auto", len(report.Runs))
	}
	wantEvals := report.Exprs * 256
	for _, run := range report.Runs {
		if run.Evals != wantEvals {
			t.Errorf("engine %s covered %d evals, want %d", run.Engine, run.Evals, wantEvals)
		}
		if run.EvalsPerSec <= 0 {
			t.Errorf("engine %s reports no throughput", run.Engine)
		}
	}
	for _, eng := range []string{"bytecode", "bitsliced", "auto"} {
		if report.Speedup[eng] <= 0 {
			t.Errorf("missing speedup entry for %s", eng)
		}
	}

	var buf bytes.Buffer
	if err := WriteEvalBenchJSON(&buf, report); err != nil {
		t.Fatalf("serialize: %v", err)
	}
	var back EvalBenchReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if back.Exprs != report.Exprs || len(back.Runs) != len(report.Runs) {
		t.Fatalf("round-trip lost data: %+v", back)
	}

	// Points round up to whole 64-lane blocks.
	odd := EvalBenchConfig{Points: 70}.withDefaults()
	if odd.Points != 128 {
		t.Fatalf("points 70 rounded to %d, want 128", odd.Points)
	}
}
