package harness

import "testing"

// TestClusterBenchSmoke runs a miniature cluster benchmark end to end:
// real nodes, a real router, cold and warm phases at two node counts,
// then the store-backed stop-and-reboot cycle at the largest count.
// Zero verdict mismatches and zero degraded items are hard assertions
// — this is the distributed differential test ci.sh leans on.
func TestClusterBenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("boots real clusters")
	}
	report, err := RunClusterBench(ClusterBenchConfig{
		NodeCounts:  []int{1, 2},
		Samples:     3,
		WarmRepeats: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Mismatches != 0 {
		t.Fatalf("%d verdict mismatches across the cluster", report.Mismatches)
	}
	if len(report.Runs) != 6 {
		t.Fatalf("%d runs, want cold+warm at 2 node counts plus store-cold+store-restart", len(report.Runs))
	}
	for _, run := range report.Runs {
		if run.Degraded != 0 {
			t.Fatalf("%d nodes %s: %d degraded items with no faults injected", run.Nodes, run.Phase, run.Degraded)
		}
		if run.Queries == 0 || run.Throughput <= 0 {
			t.Fatalf("%d nodes %s: empty run %+v", run.Nodes, run.Phase, run)
		}
		switch run.Phase {
		case "warm":
			if run.CacheHits == 0 {
				t.Fatalf("%d nodes warm: identical batch missed every shard cache", run.Nodes)
			}
		case "store-cold":
			if run.StoreHits != 0 {
				t.Fatalf("store-cold: %d store hits from an empty store", run.StoreHits)
			}
		case "store-restart":
			// Same addresses, same ring: every query must return to the
			// node whose recovered log holds its verdict.
			if run.StoreHits != run.Queries {
				t.Fatalf("store-restart: %d of %d queries served from the store", run.StoreHits, run.Queries)
			}
		}
		if run.Nodes == 2 && run.Phase == "cold" && run.ShardsUsed < 2 {
			t.Fatalf("2-node cold run used %d shards — ring not splitting", run.ShardsUsed)
		}
	}
	if report.RestartSpeedup <= 0 {
		t.Fatalf("restart speedup %v, want > 0", report.RestartSpeedup)
	}
}
