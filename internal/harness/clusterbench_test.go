package harness

import "testing"

// TestClusterBenchSmoke runs a miniature cluster benchmark end to end:
// real nodes, a real router, cold and warm phases at two node counts.
// Zero verdict mismatches and zero degraded items are hard assertions
// — this is the distributed differential test ci.sh leans on.
func TestClusterBenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("boots real clusters")
	}
	report, err := RunClusterBench(ClusterBenchConfig{
		NodeCounts:  []int{1, 2},
		Samples:     3,
		WarmRepeats: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Mismatches != 0 {
		t.Fatalf("%d verdict mismatches across the cluster", report.Mismatches)
	}
	if len(report.Runs) != 4 {
		t.Fatalf("%d runs, want cold+warm at 2 node counts", len(report.Runs))
	}
	for _, run := range report.Runs {
		if run.Degraded != 0 {
			t.Fatalf("%d nodes %s: %d degraded items with no faults injected", run.Nodes, run.Phase, run.Degraded)
		}
		if run.Queries == 0 || run.Throughput <= 0 {
			t.Fatalf("%d nodes %s: empty run %+v", run.Nodes, run.Phase, run)
		}
		if run.Phase == "warm" && run.CacheHits == 0 {
			t.Fatalf("%d nodes warm: identical batch missed every shard cache", run.Nodes)
		}
		if run.Nodes == 2 && run.Phase == "cold" && run.ShardsUsed < 2 {
			t.Fatalf("2-node cold run used %d shards — ring not splitting", run.ShardsUsed)
		}
	}
}
