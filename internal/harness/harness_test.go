package harness

import (
	"strings"
	"testing"

	"mbasolver/internal/gen"
	"mbasolver/internal/metrics"
	"mbasolver/internal/smt"
)

func solverNames(solvers []*smt.Solver) []string {
	names := make([]string, len(solvers))
	for i, s := range solvers {
		names[i] = s.Name()
	}
	return names
}

// TestHeadlineShape reproduces the paper's central claim at miniature
// scale: with a bounded budget the raw corpus is mostly unsolved, and
// after MBA-Solver simplification almost everything solves quickly.
func TestHeadlineShape(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus run is slow")
	}
	g := gen.New(gen.Config{Seed: 21})
	samples := g.Corpus(12) // 36 equations
	solvers := smt.All()
	cfg := Config{Width: 8, Budget: smt.Budget{Conflicts: 1500}, Parallelism: 4}

	base := RunBaseline(samples, solvers, cfg)
	simp := RunSimplified(samples, solvers, cfg)

	solved := func(outs []Outcome) int {
		n := 0
		for _, o := range outs {
			n++
			if !o.Solved() {
				n--
			}
		}
		return n
	}
	nb, ns := solved(base), solved(simp)
	if ns <= nb {
		t.Errorf("simplification did not help: baseline %d/%d vs simplified %d/%d",
			nb, len(base), ns, len(simp))
	}
	if float64(ns) < 0.9*float64(len(simp)) {
		t.Errorf("simplified solve rate too low: %d/%d", ns, len(simp))
	}
	// No solver may ever refute a corpus equation: they are identities
	// and every pipeline stage is semantics-preserving.
	for _, o := range append(base, simp...) {
		if o.Status == smt.NotEquivalent {
			t.Fatalf("solver %s refuted identity sample %d (%s)", o.Solver, o.Sample.ID, o.Sample.Kind)
		}
	}

	// Table renderers must mention every solver and category.
	tab := SolverTable("Table 2", base, solverNames(solvers))
	for _, want := range []string{"z3sim", "stpsim", "btorsim", "Linear MBA", "Poly MBA", "Non-poly MBA", "Total Solved"} {
		if !strings.Contains(tab, want) {
			t.Errorf("SolverTable output missing %q:\n%s", want, tab)
		}
	}
	fig3 := Figure3(base)
	if !strings.Contains(fig3, "alternation") {
		t.Errorf("Figure3 missing alternation rows:\n%s", fig3)
	}
	fig4 := Figure4(base, solverNames(solvers))
	if !strings.Contains(fig4, "btorsim") {
		t.Errorf("Figure4 missing solver rows:\n%s", fig4)
	}
	fig6 := Figure6(simp)
	if !strings.Contains(fig6, "p50") {
		t.Errorf("Figure6 missing percentiles:\n%s", fig6)
	}
}

func TestTable1Rendering(t *testing.T) {
	g := gen.New(gen.Config{Seed: 22})
	samples := g.Corpus(20)
	out := Table1(samples)
	for _, want := range []string{"Num of Variables", "MBA Alternation", "MBA Length", "Number of Terms", "Coefficients"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 missing %q:\n%s", want, out)
		}
	}
}

func TestProfileSimplifier(t *testing.T) {
	g := gen.New(gen.Config{Seed: 23})
	rows := ProfileSimplifier(g, 3)
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	filled := 0
	for _, r := range rows {
		if r.Samples > 0 {
			filled++
			if r.Time <= 0 {
				t.Errorf("bucket %d: non-positive time", r.Alternation)
			}
		}
	}
	if filled < 2 {
		t.Errorf("only %d/4 buckets captured samples", filled)
	}
	out := Table8(rows)
	if !strings.Contains(out, "Alternation") {
		t.Errorf("Table8 rendering broken:\n%s", out)
	}
}

func TestRunPeersShape(t *testing.T) {
	if testing.Short() {
		t.Skip("peer comparison is slow")
	}
	g := gen.New(gen.Config{Seed: 24})
	samples := g.Corpus(6) // 18 equations
	solvers := smt.All()
	cfg := Config{Width: 8, Budget: smt.Budget{Conflicts: 1200}, Parallelism: 4}
	rows := RunPeers(samples, DefaultTools(cfg.Width), solvers, cfg)
	if len(rows) != 3 {
		t.Fatalf("got %d peer rows", len(rows))
	}
	byName := map[string]PeerRow{}
	for _, r := range rows {
		byName[r.Tool] = r
	}
	mba := byName["MBA-Solver"]
	ss := byName["SSPAM"]
	if mba.Wrong != 0 {
		t.Errorf("MBA-Solver produced %d wrong simplifications", mba.Wrong)
	}
	if ss.Wrong != 0 {
		t.Errorf("SSPAM produced %d wrong simplifications (its rules are identities)", ss.Wrong)
	}
	if mba.Correct <= ss.Correct {
		t.Errorf("MBA-Solver (%d correct) should beat SSPAM (%d correct)", mba.Correct, ss.Correct)
	}
	out := Table7(rows, solverNames(solvers))
	for _, want := range []string{"SSPAM", "Syntia", "MBA-Solver", "Ratio"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table7 missing %q:\n%s", want, out)
		}
	}
}

func TestOutcomeMetricsRecorded(t *testing.T) {
	g := gen.New(gen.Config{Seed: 25})
	samples := []gen.Sample{g.Linear()}
	outs := RunBaseline(samples, []*smt.Solver{smt.NewBoolectorSim()}, Config{Width: 4, Budget: smt.Budget{Conflicts: 500}})
	if len(outs) != 1 {
		t.Fatalf("got %d outcomes", len(outs))
	}
	if outs[0].Metrics.Kind != metrics.KindLinear {
		t.Errorf("metrics not recorded: %+v", outs[0].Metrics)
	}
}

func TestPlotsRender(t *testing.T) {
	g := gen.New(gen.Config{Seed: 31})
	samples := g.Corpus(3)
	outs := RunBaseline(samples, smt.All(), Config{Width: 6, Budget: smt.Budget{Conflicts: 400}})
	for name, out := range map[string]string{
		"fig3": PlotFigure3(outs),
		"fig4": PlotFigure4(outs, solverNames(smt.All())),
		"fig6": PlotFigure6(outs),
	} {
		if !strings.Contains(out, "|") || !strings.Contains(out, "-") {
			t.Errorf("%s plot missing axes:\n%s", name, out)
		}
		if len(strings.Split(out, "\n")) < plotHeight {
			t.Errorf("%s plot too short", name)
		}
	}
}

func TestOutcomesCSVRoundTrip(t *testing.T) {
	g := gen.New(gen.Config{Seed: 33})
	samples := g.Corpus(2)
	outs := RunBaseline(samples, []*smt.Solver{smt.NewBoolectorSim()},
		Config{Width: 6, Budget: smt.Budget{Conflicts: 300}})
	var sb strings.Builder
	if err := WriteOutcomesCSV(&sb, outs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadOutcomesCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(outs) {
		t.Fatalf("round trip %d of %d rows", len(back), len(outs))
	}
	for i := range outs {
		if back[i].Sample.ID != outs[i].Sample.ID ||
			back[i].Sample.Kind != outs[i].Sample.Kind ||
			back[i].Solver != outs[i].Solver ||
			back[i].Status != outs[i].Status ||
			back[i].Metrics.Alternation != outs[i].Metrics.Alternation {
			t.Fatalf("row %d differs: %+v vs %+v", i, back[i], outs[i])
		}
	}
	// The re-read rows must render the same Table 2 cells.
	a := SolverTable("t", outs, []string{"btorsim"})
	b := SolverTable("t", back, []string{"btorsim"})
	if a != b {
		t.Errorf("re-rendered table differs:\n%s\nvs\n%s", a, b)
	}
}

func TestAblation(t *testing.T) {
	g := gen.New(gen.Config{Seed: 51})
	samples := g.Corpus(4)
	rows := RunAblation(samples)
	if len(rows) != 5 {
		t.Fatalf("got %d ablation rows", len(rows))
	}
	byName := map[string]AblationRow{}
	for _, r := range rows {
		byName[r.Config] = r
	}
	full := byName["full"]
	if full.AltAfter >= full.AltBefore {
		t.Errorf("full config did not reduce alternation: %.1f -> %.1f", full.AltBefore, full.AltAfter)
	}
	if byName["no-finalopt"].AltAfter < full.AltAfter {
		t.Errorf("disabling final-opt should not reduce alternation further")
	}
	out := AblationTable(rows)
	for _, want := range []string{"full", "no-table", "no-cse", "no-finalopt", "basis-disj"} {
		if !strings.Contains(out, want) {
			t.Errorf("AblationTable missing %q:\n%s", want, out)
		}
	}
}
