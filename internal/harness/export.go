package harness

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"

	"mbasolver/internal/metrics"
	"mbasolver/internal/smt"
)

// WriteOutcomesCSV exports per-query outcomes for external analysis
// (the raw data behind Tables 2/6 and Figures 3/4/6). Columns:
// sample id, kind, hard flag, solver, status, elapsed seconds and the
// complexity metrics of the expression the solver saw.
func WriteOutcomesCSV(w io.Writer, outcomes []Outcome) error {
	cw := csv.NewWriter(w)
	header := []string{
		"sample", "kind", "hard", "solver", "status", "elapsed_s",
		"vars", "alternation", "length", "terms", "max_coeff",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, o := range outcomes {
		rec := []string{
			strconv.Itoa(o.Sample.ID),
			o.Sample.Kind.String(),
			strconv.FormatBool(o.Sample.Hard),
			o.Solver,
			o.Status.String(),
			fmt.Sprintf("%.6f", o.Elapsed.Seconds()),
			strconv.Itoa(o.Metrics.NumVars),
			strconv.Itoa(o.Metrics.Alternation),
			strconv.Itoa(o.Metrics.Length),
			strconv.Itoa(o.Metrics.NumTerms),
			strconv.FormatUint(o.Metrics.MaxCoeff, 10),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadOutcomesCSV round-trips the export format (used by tests and by
// tooling that post-processes saved runs). Only the fields needed for
// re-rendering tables are reconstructed.
func ReadOutcomesCSV(r io.Reader) ([]Outcome, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(records) == 0 {
		return nil, nil
	}
	out := make([]Outcome, 0, len(records)-1)
	for _, rec := range records[1:] {
		if len(rec) != 11 {
			return nil, fmt.Errorf("harness: CSV row has %d fields, want 11", len(rec))
		}
		o := Outcome{}
		o.Sample.ID, _ = strconv.Atoi(rec[0])
		switch rec[1] {
		case "poly":
			o.Sample.Kind = metrics.KindPoly
		case "nonpoly":
			o.Sample.Kind = metrics.KindNonPoly
		}
		o.Sample.Hard = rec[2] == "true"
		o.Solver = rec[3]
		switch rec[4] {
		case "equivalent":
			o.Status = smt.Equivalent
		case "not-equivalent":
			o.Status = smt.NotEquivalent
		}
		secs, err := strconv.ParseFloat(rec[5], 64)
		if err != nil {
			return nil, fmt.Errorf("harness: bad elapsed %q", rec[5])
		}
		o.Elapsed = time.Duration(secs * float64(time.Second))
		o.Metrics.NumVars, _ = strconv.Atoi(rec[6])
		o.Metrics.Alternation, _ = strconv.Atoi(rec[7])
		o.Metrics.Length, _ = strconv.Atoi(rec[8])
		o.Metrics.NumTerms, _ = strconv.Atoi(rec[9])
		o.Metrics.MaxCoeff, _ = strconv.ParseUint(rec[10], 10, 64)
		out = append(out, o)
	}
	return out, nil
}
