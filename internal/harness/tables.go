package harness

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"mbasolver/internal/gen"
	"mbasolver/internal/metrics"
)

// tableBuilder renders aligned text tables.
type tableBuilder struct {
	title string
	rows  [][]string
}

func (t *tableBuilder) titlef(format string, args ...any) {
	t.title = fmt.Sprintf(format, args...)
}

func (t *tableBuilder) row(cells ...string) {
	t.rows = append(t.rows, cells)
}

func (t *tableBuilder) String() string {
	widths := []int{}
	for _, r := range t.rows {
		for i, c := range r {
			for len(widths) <= i {
				widths = append(widths, 0)
			}
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	for ri, r := range t.rows {
		for i, c := range r {
			fmt.Fprintf(&b, "%-*s", widths[i]+2, c)
		}
		b.WriteByte('\n')
		if ri == 0 {
			total := 0
			for _, w := range widths {
				total += w + 2
			}
			b.WriteString(strings.Repeat("-", total))
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// Table1 renders the corpus complexity distribution (paper Table 1):
// min/max/average of each metric per MBA category.
func Table1(samples []gen.Sample) string {
	kinds := []metrics.Kind{metrics.KindLinear, metrics.KindPoly, metrics.KindNonPoly}
	type agg struct {
		min, max, sum [5]float64
		n             int
	}
	get := func(m metrics.Metrics) [5]float64 {
		return [5]float64{
			float64(m.NumVars),
			float64(m.Alternation),
			float64(m.Length),
			float64(m.NumTerms),
			float64(m.MaxCoeff),
		}
	}
	aggs := map[metrics.Kind]*agg{}
	for _, k := range kinds {
		aggs[k] = &agg{}
	}
	for _, s := range samples {
		m := get(metrics.Measure(s.Obfuscated))
		a := aggs[s.Kind]
		for i, v := range m {
			if a.n == 0 || v < a.min[i] {
				a.min[i] = v
			}
			if v > a.max[i] {
				a.max[i] = v
			}
			a.sum[i] += v
		}
		a.n++
	}
	names := []string{"Num of Variables", "MBA Alternation", "MBA Length", "Number of Terms", "Coefficients"}
	var b tableBuilder
	b.titlef("Table 1: complexity distribution of the MBA corpus (%d samples)", len(samples))
	b.row("Metric",
		"Linear Min", "Linear Max", "Linear Avg",
		"Poly Min", "Poly Max", "Poly Avg",
		"Nonpoly Min", "Nonpoly Max", "Nonpoly Avg")
	for i, name := range names {
		row := []string{name}
		for _, k := range kinds {
			a := aggs[k]
			avg := 0.0
			if a.n > 0 {
				avg = a.sum[i] / float64(a.n)
			}
			row = append(row,
				fmt.Sprintf("%.0f", a.min[i]),
				fmt.Sprintf("%.0f", a.max[i]),
				fmt.Sprintf("%.1f", avg))
		}
		b.row(row...)
	}
	return b.String()
}

// Figure3 renders solving time against each complexity metric: per
// metric bucket, the average solving time and the timeout rate. The
// paper's headline observation — alternation dominates — shows up as a
// monotone climb of the alternation rows.
func Figure3(outcomes []Outcome) string {
	type bucketKey struct {
		metric string
		bucket int
	}
	type agg struct {
		sum              time.Duration
		solved, timeouts int
	}
	buckets := map[bucketKey]*agg{}
	metricsOf := func(o Outcome) map[string]int {
		return map[string]int{
			"alternation": o.Metrics.Alternation / 5 * 5,
			"variables":   o.Metrics.NumVars,
			"terms":       o.Metrics.NumTerms / 4 * 4,
			"length":      o.Metrics.Length / 50 * 50,
		}
	}
	for _, o := range outcomes {
		for m, bk := range metricsOf(o) {
			k := bucketKey{m, bk}
			a := buckets[k]
			if a == nil {
				a = &agg{}
				buckets[k] = a
			}
			if o.Solved() {
				a.solved++
				a.sum += o.Elapsed
			} else {
				a.timeouts++
			}
		}
	}
	keys := make([]bucketKey, 0, len(buckets))
	for k := range buckets {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].metric != keys[j].metric {
			return keys[i].metric < keys[j].metric
		}
		return keys[i].bucket < keys[j].bucket
	})
	var b tableBuilder
	b.titlef("Figure 3: complexity metrics vs solver performance")
	b.row("Metric", "Bucket", "Solved", "Timeout", "Timeout %", "Avg time (solved)")
	for _, k := range keys {
		a := buckets[k]
		n := a.solved + a.timeouts
		avg := time.Duration(0)
		if a.solved > 0 {
			avg = a.sum / time.Duration(a.solved)
		}
		b.row(k.metric, fmt.Sprintf(">=%d", k.bucket),
			fmt.Sprintf("%d", a.solved), fmt.Sprintf("%d", a.timeouts),
			fmt.Sprintf("%.0f%%", 100*float64(a.timeouts)/float64(n)),
			fmt.Sprintf("%.3fs", sec(avg)))
	}
	return b.String()
}

// Figure4 renders the per-solver solving-time distribution: solve-rate
// and percentiles of the solved queries, the textual equivalent of the
// paper's scatter plot.
func Figure4(outcomes []Outcome, solvers []string) string {
	var b tableBuilder
	b.titlef("Figure 4: solving time distribution per solver")
	b.row("Solver", "Queries", "Solved", "Timeouts", "p25", "p50", "p90", "Max")
	for _, s := range solvers {
		var times []time.Duration
		timeouts, total := 0, 0
		for _, o := range outcomes {
			if o.Solver != s {
				continue
			}
			total++
			if o.Solved() {
				times = append(times, o.Elapsed)
			} else {
				timeouts++
			}
		}
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		b.row(s, fmt.Sprintf("%d", total), fmt.Sprintf("%d", len(times)),
			fmt.Sprintf("%d", timeouts),
			fmtPct(times, 0.25), fmtPct(times, 0.5), fmtPct(times, 0.9), fmtPct(times, 1.0))
	}
	return b.String()
}

func fmtPct(sorted []time.Duration, q float64) string {
	if len(sorted) == 0 {
		return "-"
	}
	i := int(q*float64(len(sorted))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return fmt.Sprintf("%.3fs", sec(sorted[i]))
}

// Figure6 renders the z3sim solving-time distribution after
// simplification (the paper's Figure 6 scatter).
func Figure6(outcomes []Outcome) string {
	var b tableBuilder
	b.titlef("Figure 6: z3sim solving time with MBA-Solver's simplification")
	b.row("Percentile", "Solving time")
	var times []time.Duration
	timeouts := 0
	for _, o := range outcomes {
		if o.Solver != "z3sim" {
			continue
		}
		if o.Solved() {
			times = append(times, o.Elapsed)
		} else {
			timeouts++
		}
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	for _, q := range []float64{0.10, 0.25, 0.50, 0.75, 0.90, 0.99, 1.0} {
		b.row(fmt.Sprintf("p%02.0f", q*100), fmtPct(times, q))
	}
	b.row("timeouts", fmt.Sprintf("%d", timeouts))
	return b.String()
}

// PeerRow aggregates one tool's Table 7 numbers.
type PeerRow struct {
	Tool                string
	Correct, Wrong, Out int
	AltBefore, AltAfter float64 // averages over correct samples
	SolveAvg            map[string]time.Duration
}

// Table7 renders the peer comparison.
func Table7(rows []PeerRow, solvers []string) string {
	var b tableBuilder
	b.titlef("Table 7: comparing simplification results with peer tools")
	header := []string{"Tool", "Y", "N", "O", "Ratio", "Alt Before", "Alt After", "A/B %"}
	header = append(header, solvers...)
	b.row(header...)
	for _, r := range rows {
		total := r.Correct + r.Wrong + r.Out
		ratio := 0.0
		if total > 0 {
			ratio = 100 * float64(r.Correct) / float64(total)
		}
		ab := 0.0
		if r.AltBefore > 0 {
			ab = 100 * r.AltAfter / r.AltBefore
		}
		row := []string{
			r.Tool,
			fmt.Sprintf("%d", r.Correct), fmt.Sprintf("%d", r.Wrong), fmt.Sprintf("%d", r.Out),
			fmt.Sprintf("%.1f%%", ratio),
			fmt.Sprintf("%.1f", r.AltBefore), fmt.Sprintf("%.1f", r.AltAfter),
			fmt.Sprintf("%.1f%%", ab),
		}
		for _, s := range solvers {
			row = append(row, fmt.Sprintf("%.3fs", sec(r.SolveAvg[s])))
		}
		b.row(row...)
	}
	return b.String()
}

// Table8Row is one complexity step of the simplifier profile.
type Table8Row struct {
	Alternation int
	Time        time.Duration
	AllocBytes  uint64
	Samples     int
}

// Table8 renders the simplifier's own time/memory cost.
func Table8(rows []Table8Row) string {
	var b tableBuilder
	b.titlef("Table 8: MBA-Solver performance by input MBA alternation")
	b.row("Alternation", "Samples", "Avg time", "Avg memory")
	for _, r := range rows {
		b.row(fmt.Sprintf("%d", r.Alternation), fmt.Sprintf("%d", r.Samples),
			fmt.Sprintf("%.4fs", sec(r.Time)),
			fmt.Sprintf("%.2f MB", float64(r.AllocBytes)/(1<<20)))
	}
	return b.String()
}
