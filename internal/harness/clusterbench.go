package harness

import (
	"context"
	"fmt"
	"net"
	"net/http/httptest"
	"os"
	"runtime"
	"time"

	"mbasolver/internal/bv"
	"mbasolver/internal/cluster"
	"mbasolver/internal/gen"
	"mbasolver/internal/service"
	"mbasolver/internal/service/client"
	"mbasolver/internal/smt"
	"mbasolver/internal/store"
)

// ClusterBenchConfig sizes the sharded-cluster benchmark: the same
// known-answer batch driven through a router at several node counts,
// cold (empty shard caches) and warm (the identical batch re-sent, so
// every item should ride its owner node's verdict cache). Zero fields
// take defaults.
type ClusterBenchConfig struct {
	// NodeCounts are the cluster sizes to compare (default 1,2,3).
	NodeCounts []int `json:"node_counts"`
	// Samples is the number of proved-equivalent corpus equations; each
	// contributes a refuted off-by-one variant too, so the batch holds
	// 2*Samples items with known verdicts (default 12).
	Samples int   `json:"samples"`
	Seed    int64 `json:"seed"`  // corpus generator seed (default 11)
	Width   uint  `json:"width"` // bitvector width (default 8)
	// WarmRepeats is how many times the identical batch is re-sent to
	// measure the warm-shard rate (default 3).
	WarmRepeats int `json:"warm_repeats"`
	// Conflicts is the per-item CDCL budget (default 200000).
	Conflicts int64 `json:"conflicts"`
	// Workers is the per-node pool size (default 1 — deliberately
	// minimal so node count, not core count, is the varied resource
	// when all nodes share one machine: N nodes = N solver workers).
	Workers int `json:"workers"`
}

func (c ClusterBenchConfig) withDefaults() ClusterBenchConfig {
	if len(c.NodeCounts) == 0 {
		c.NodeCounts = []int{1, 2, 3}
	}
	if c.Samples <= 0 {
		c.Samples = 12
	}
	if c.Seed == 0 {
		c.Seed = 11
	}
	if c.Width == 0 {
		c.Width = 8
	}
	if c.WarmRepeats <= 0 {
		c.WarmRepeats = 3
	}
	if c.Conflicts == 0 {
		c.Conflicts = 200_000
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	return c
}

// ClusterBenchRun is one (node count, phase) measurement.
type ClusterBenchRun struct {
	Nodes int    `json:"nodes"`
	Phase string `json:"phase"` // "cold", "warm", "store-cold" or "store-restart"
	// Batches and Queries are totals over the phase (warm phases send
	// WarmRepeats identical batches).
	Batches    int     `json:"batches"`
	Queries    int     `json:"queries"`
	WallMS     float64 `json:"wall_ms"`
	Throughput float64 `json:"throughput_qps"` // queries per wall second
	CacheHits  int     `json:"cache_hits"`
	Degraded   int     `json:"degraded"` // reasoned Unknowns (should be 0 — no faults here)
	ShardsUsed int     `json:"shards_used"`
	// StoreHits counts queries answered from the persistent verdict
	// store (second-level lookups behind the LRU); non-zero only in the
	// store phases.
	StoreHits int `json:"store_hits"`
}

// ClusterBenchReport is the full result, serialized to
// BENCH_cluster.json by scripts/bench.sh.
type ClusterBenchReport struct {
	Config ClusterBenchConfig `json:"config"`
	// Cores is the machine's core count — the hard ceiling on cold
	// scaling when every "node" is in-process: N single-worker nodes on
	// C cores can speed up cold compute by at most min(N, C). On one
	// core the cold ratios hover near 1.0 and the warm rows carry the
	// locality story; on a real deployment each node brings its own
	// cores and the cold ratios are the capacity story.
	Cores int               `json:"cores"`
	Runs  []ClusterBenchRun `json:"runs"`
	// ColdWarmSpeedup is cold wall over per-batch warm wall, keyed by
	// node count — the value of a warm shard.
	ColdWarmSpeedup map[string]float64 `json:"cold_warm_speedup"`
	// ColdScaling is cold throughput at each node count over cold
	// throughput at the smallest count — the compute-bound scaling
	// adding nodes buys. WarmScaling is the same ratio for warm
	// batches, which are cache-hit bound: with every verdict a shard
	// cache hit, the HTTP fan-out is the cost, so warm scaling below
	// 1.0 at higher node counts is expected on one machine and the
	// cold number is the capacity story.
	ColdScaling map[string]float64 `json:"cold_scaling"`
	WarmScaling map[string]float64 `json:"warm_scaling"`
	// RestartSpeedup is store-cold wall over store-restart wall at the
	// largest node count: how much faster the identical batch completes
	// when every node recovers its persistent verdict log at boot and
	// serves from disk instead of re-solving. Fresh processes, cold
	// LRUs — the speedup is purely the on-disk state.
	RestartSpeedup float64 `json:"restart_speedup"`
	// Mismatches counts items whose definitive verdict disagreed with
	// the known ground truth, across every run; anything but zero is a
	// correctness bug.
	Mismatches int `json:"mismatches"`
}

// clusterBenchQuery is one known-answer batch item.
type clusterBenchQuery struct {
	a, b string
	want smt.Status
}

// clusterBenchCorpus builds the known-answer workload: Samples
// screened-equivalent linear MBA pairs plus an off-by-one refuted
// variant of each, rendered to source (the wire carries text, and the
// print/re-parse round trip is digest-stable, so client-side and
// node-side hashing agree).
func clusterBenchCorpus(cfg ClusterBenchConfig) []clusterBenchQuery {
	g := gen.New(gen.Config{Seed: cfg.Seed, LinearTerms: 4, CoeffRange: 3})
	screen := smt.NewZ3Sim()
	out := make([]clusterBenchQuery, 0, 2*cfg.Samples)
	kept := 0
	for attempts := 0; kept < cfg.Samples && attempts < 20*cfg.Samples; attempts++ {
		s := g.Linear()
		lhs, rhs := s.Equation()
		ta, tb := bv.FromExpr(lhs, cfg.Width), bv.FromExpr(rhs, cfg.Width)
		if screen.CheckTermEquiv(ta, tb, smt.Budget{Conflicts: 10_000}).Status != smt.Equivalent {
			continue
		}
		kept++
		out = append(out,
			clusterBenchQuery{lhs.String(), rhs.String(), smt.Equivalent},
			clusterBenchQuery{lhs.String(), fmt.Sprintf("(%s)+1", rhs.String()), smt.NotEquivalent},
		)
	}
	return out
}

// benchCluster is one booted cluster: n service nodes behind a router
// behind an HTTP front.
type benchCluster struct {
	nodes  []*service.Server
	fronts []*httptest.Server
	stores []*store.Store
	addrs  []string // per-node listen addresses, reusable across a reboot
	router *cluster.Router
	front  *httptest.Server
	client *client.Client
}

// bootBenchCluster boots n nodes behind a router. storeDirs, when
// non-nil, backs node i with a persistent verdict store at
// storeDirs[i]. addrs, when non-nil, pins each node's listen address:
// the restart phase reboots on the first boot's addresses because the
// router's consistent-hash ring keys on node URLs — same addresses,
// same shard assignment, so every query returns to the node whose
// store holds its verdict.
func bootBenchCluster(cfg ClusterBenchConfig, n int, storeDirs, addrs []string) (*benchCluster, error) {
	bc := &benchCluster{}
	urls := make([]string, 0, n)
	for i := 0; i < n; i++ {
		addr := "127.0.0.1:0"
		if addrs != nil {
			addr = addrs[i]
		}
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			bc.close()
			return nil, fmt.Errorf("node %d listen on %s: %w", i, addr, err)
		}
		nodeCfg := service.Config{
			Workers:        cfg.Workers,
			DefaultTimeout: 60 * time.Second,
			MaxTimeout:     120 * time.Second,
		}
		if storeDirs != nil {
			st, err := store.Open(storeDirs[i], store.Options{})
			if err != nil {
				ln.Close()
				bc.close()
				return nil, fmt.Errorf("node %d store: %w", i, err)
			}
			bc.stores = append(bc.stores, st)
			nodeCfg.Store = st
		}
		svc := service.New(nodeCfg)
		ts := httptest.NewUnstartedServer(svc.Handler())
		ts.Listener.Close()
		ts.Listener = ln
		ts.Start()
		bc.nodes = append(bc.nodes, svc)
		bc.fronts = append(bc.fronts, ts)
		bc.addrs = append(bc.addrs, ln.Addr().String())
		urls = append(urls, ts.URL)
	}
	rt, err := cluster.NewRouter(cluster.RouterConfig{
		Nodes:         urls,
		ProbeInterval: -1, // all nodes are in-process and healthy; passive marking suffices
	})
	if err != nil {
		bc.close()
		return nil, err
	}
	bc.router = rt
	bc.front = httptest.NewServer(rt.Handler())
	bc.client = client.New(bc.front.URL)
	return bc, nil
}

func (bc *benchCluster) close() {
	if bc.front != nil {
		bc.front.Close()
	}
	if bc.router != nil {
		bc.router.Close()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i, svc := range bc.nodes {
		_ = svc.Shutdown(ctx)
		bc.fronts[i].Close()
	}
	// Stores close after their services drain: Close flushes the pending
	// channel and fsyncs, so everything the phase computed is on disk
	// for the next boot.
	for _, st := range bc.stores {
		_ = st.Close()
	}
}

// storeHits sums second-level store lookups served across every node;
// zero when the cluster runs memory-only.
func (bc *benchCluster) storeHits() int {
	total := 0
	for _, st := range bc.stores {
		total += int(st.Snapshot().Hits)
	}
	return total
}

// runClusterPhase drives `batches` identical copies of req through the
// cluster and checks every definitive verdict against the corpus
// ground truth. It returns the measured run plus the number of verdict
// mismatches for the caller's report.
func runClusterPhase(ctx context.Context, bc *benchCluster, req service.BatchRequest, corpus []clusterBenchQuery, n int, phase string, batches int) (ClusterBenchRun, int, error) {
	run := ClusterBenchRun{Nodes: n, Phase: phase, Batches: batches}
	mismatches := 0
	shards := map[string]bool{}
	hitsBefore := bc.storeHits()
	start := time.Now()
	for b := 0; b < batches; b++ {
		resp, err := bc.client.Batch(ctx, req)
		if err != nil {
			return run, mismatches, fmt.Errorf("%d nodes, %s batch %d: %w", n, phase, b, err)
		}
		run.Queries += len(resp.Items)
		run.CacheHits += resp.CacheHits
		for i, it := range resp.Items {
			if it.Solve == nil {
				return run, mismatches, fmt.Errorf("%d nodes, %s: item %d missing result: %+v", n, phase, i, it)
			}
			shards[it.Node] = true
			switch it.Solve.Status {
			case smt.Timeout.String():
				run.Degraded++
			case corpus[i].want.String():
			default:
				mismatches++
			}
		}
	}
	wall := time.Since(start)
	run.WallMS = durMSf(wall)
	if wall > 0 {
		run.Throughput = float64(run.Queries) / wall.Seconds()
	}
	run.ShardsUsed = len(shards)
	run.StoreHits = bc.storeHits() - hitsBefore
	return run, mismatches, nil
}

// RunClusterBench measures routed batch throughput at each configured
// node count, cold and warm, against one fixed known-answer workload,
// then reruns the largest cluster with per-node persistent stores
// through a full stop-and-reboot cycle to price a warm restart.
// Every definitive verdict is checked against ground truth; the report
// carries the mismatch count (must be zero) alongside the timings, so
// the benchmark doubles as a distributed differential test.
func RunClusterBench(cfg ClusterBenchConfig) (ClusterBenchReport, error) {
	cfg = cfg.withDefaults()
	corpus := clusterBenchCorpus(cfg)
	report := ClusterBenchReport{
		Config:          cfg,
		Cores:           runtime.NumCPU(),
		ColdWarmSpeedup: map[string]float64{},
		ColdScaling:     map[string]float64{},
		WarmScaling:     map[string]float64{},
	}

	req := service.BatchRequest{}
	for _, q := range corpus {
		req.Items = append(req.Items, service.BatchItem{
			Solve: &service.SolveRequest{A: q.a, B: q.b, Width: cfg.Width, Conflicts: cfg.Conflicts},
		})
	}

	baseColdQPS, baseWarmQPS := 0.0, 0.0
	for _, n := range cfg.NodeCounts {
		bc, err := bootBenchCluster(cfg, n, nil, nil)
		if err != nil {
			return report, err
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)

		cold, mm, err := runClusterPhase(ctx, bc, req, corpus, n, "cold", 1)
		report.Mismatches += mm
		if err == nil {
			var warm ClusterBenchRun
			warm, mm, err = runClusterPhase(ctx, bc, req, corpus, n, "warm", cfg.WarmRepeats)
			report.Mismatches += mm
			if err == nil {
				report.Runs = append(report.Runs, cold, warm)
				key := fmt.Sprintf("%d", n)
				perBatchWarm := warm.WallMS / float64(warm.Batches)
				if perBatchWarm > 0 {
					report.ColdWarmSpeedup[key] = cold.WallMS / perBatchWarm
				}
				if baseColdQPS == 0 {
					baseColdQPS = cold.Throughput
				}
				if baseColdQPS > 0 {
					report.ColdScaling[key] = cold.Throughput / baseColdQPS
				}
				if baseWarmQPS == 0 {
					baseWarmQPS = warm.Throughput
				}
				if baseWarmQPS > 0 {
					report.WarmScaling[key] = warm.Throughput / baseWarmQPS
				}
			}
		}
		cancel()
		bc.close()
		if err != nil {
			return report, err
		}
	}

	// Warm-restart pricing: the largest cluster again, this time with a
	// persistent verdict store per node. "store-cold" fills the logs
	// from scratch; the cluster is then fully torn down (a clean close
	// drains the group commits onto disk) and rebooted from the same
	// directories on the same addresses, and "store-restart" measures
	// the identical batch served from recovered state — fresh
	// processes, cold LRUs, warm disks.
	nMax := 0
	for _, n := range cfg.NodeCounts {
		if n > nMax {
			nMax = n
		}
	}
	storeDirs := make([]string, nMax)
	for i := range storeDirs {
		dir, err := os.MkdirTemp("", "mbabench-store-")
		if err != nil {
			return report, fmt.Errorf("store dir: %w", err)
		}
		defer os.RemoveAll(dir)
		storeDirs[i] = dir
	}

	bc, err := bootBenchCluster(cfg, nMax, storeDirs, nil)
	if err != nil {
		return report, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	storeCold, mm, err := runClusterPhase(ctx, bc, req, corpus, nMax, "store-cold", 1)
	report.Mismatches += mm
	cancel()
	addrs := bc.addrs
	bc.close()
	if err != nil {
		return report, err
	}

	bc, err = bootBenchCluster(cfg, nMax, storeDirs, addrs)
	if err != nil {
		return report, err
	}
	ctx, cancel = context.WithTimeout(context.Background(), 10*time.Minute)
	storeRestart, mm, err := runClusterPhase(ctx, bc, req, corpus, nMax, "store-restart", 1)
	report.Mismatches += mm
	cancel()
	bc.close()
	if err != nil {
		return report, err
	}
	report.Runs = append(report.Runs, storeCold, storeRestart)
	if storeRestart.WallMS > 0 {
		report.RestartSpeedup = storeCold.WallMS / storeRestart.WallMS
	}
	return report, nil
}
