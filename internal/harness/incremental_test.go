package harness

import (
	"testing"

	"mbasolver/internal/gen"
	"mbasolver/internal/smt"
)

// TestIncrementalMatchesFresh: the incremental harness mode must never
// contradict fresh-solver verdicts on corpus identities — and since
// every sample is an identity, neither mode may refute anything. Warm
// contexts may solve strictly more within the conflict budget, never
// less accurately.
func TestIncrementalMatchesFresh(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus run is slow")
	}
	// Kept deliberately small: the heavyweight differential coverage
	// (full corpus, budgets, cancellation) lives in internal/smt; this
	// test pins the harness wiring, and the package is near the race
	// detector's 10-minute budget already.
	g := gen.New(gen.Config{Seed: 33, LinearTerms: 3, CoeffRange: 3})
	var samples []gen.Sample
	for i := 0; i < 4; i++ {
		samples = append(samples, g.Linear())
	}
	solvers := smt.All()
	cfg := Config{Width: 8, Budget: smt.Budget{Conflicts: 2000}, Parallelism: 2, Portfolio: true}

	fresh := RunBaseline(samples, solvers, cfg)
	cfg.Incremental = true
	inc := RunBaseline(samples, solvers, cfg)

	if len(fresh) != len(inc) {
		t.Fatalf("outcome count differs: fresh %d vs incremental %d", len(fresh), len(inc))
	}
	freshSolved, incSolved := 0, 0
	for i := range fresh {
		if fresh[i].Sample.ID != inc[i].Sample.ID || fresh[i].Solver != inc[i].Solver {
			t.Fatalf("outcome %d misaligned: fresh (%d,%s) vs incremental (%d,%s)",
				i, fresh[i].Sample.ID, fresh[i].Solver, inc[i].Sample.ID, inc[i].Solver)
		}
		for _, o := range []Outcome{fresh[i], inc[i]} {
			if o.Status == smt.NotEquivalent {
				t.Fatalf("%s refuted identity sample %d", o.Solver, o.Sample.ID)
			}
		}
		if fresh[i].Solved() {
			freshSolved++
		}
		if inc[i].Solved() {
			incSolved++
		}
	}
	// Warm contexts usually solve at least as much (learned clauses
	// carry over), but branching-heuristic state differs from a cold
	// solver's, so allow slack before calling it a regression.
	if incSolved+2 < freshSolved {
		t.Errorf("incremental mode solved markedly fewer: %d vs fresh %d", incSolved, freshSolved)
	}
}
