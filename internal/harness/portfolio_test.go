package harness

import (
	"reflect"
	"strings"
	"testing"

	"mbasolver/internal/gen"
	"mbasolver/internal/portfolio"
	"mbasolver/internal/smt"
)

// TestPortfolioColumn: with Config.Portfolio a fourth virtual-solver
// outcome appears per sample, never doing worse than the single
// engines on solved queries, and the table renderer accepts it as a
// regular column.
func TestPortfolioColumn(t *testing.T) {
	g := gen.New(gen.Config{Seed: 41})
	samples := []gen.Sample{g.Linear(), g.Linear(), g.Poly()}
	solvers := smt.All()
	cfg := Config{Width: 6, Budget: smt.Budget{Conflicts: 2000}, Parallelism: 2, Portfolio: true}
	outs := RunBaseline(samples, solvers, cfg)
	if len(outs) != len(samples)*(len(solvers)+1) {
		t.Fatalf("got %d outcomes, want %d", len(outs), len(samples)*(len(solvers)+1))
	}
	perSample := map[int]map[string]Outcome{}
	for _, o := range outs {
		if perSample[o.Sample.ID] == nil {
			perSample[o.Sample.ID] = map[string]Outcome{}
		}
		perSample[o.Sample.ID][o.Solver] = o
	}
	for id, bySolver := range perSample {
		po, ok := bySolver[portfolio.Name]
		if !ok {
			t.Fatalf("sample %d: no portfolio outcome", id)
		}
		anySolved := false
		for _, s := range solvers {
			if bySolver[s.Name()].Solved() {
				anySolved = true
			}
		}
		// Virtual best: if any engine solved it, the portfolio (same
		// budget, racing all engines) must too.
		if anySolved && !po.Solved() {
			t.Errorf("sample %d: an engine solved it but the portfolio did not (%v)", id, po.Status)
		}
	}

	names := append(solverNames(solvers), portfolio.Name)
	tab := SolverTable("Table 2 + virtual best", outs, names)
	if !strings.Contains(tab, portfolio.Name) {
		t.Errorf("SolverTable missing portfolio column:\n%s", tab)
	}
}

// TestRunQueriesDeterministicOrder: identical inputs must yield
// identically ordered outcomes across runs — exported tables and CSVs
// depend on it.
func TestRunQueriesDeterministicOrder(t *testing.T) {
	g := gen.New(gen.Config{Seed: 42})
	samples := g.Corpus(2)
	cfg := Config{Width: 6, Budget: smt.Budget{Conflicts: 300}, Parallelism: 8, Portfolio: true}
	key := func(outs []Outcome) [][2]any {
		ks := make([][2]any, len(outs))
		for i, o := range outs {
			ks[i] = [2]any{o.Sample.ID, o.Solver}
		}
		return ks
	}
	first := key(RunBaseline(samples, smt.All(), cfg))
	for run := 0; run < 3; run++ {
		if got := key(RunBaseline(samples, smt.All(), cfg)); !reflect.DeepEqual(got, first) {
			t.Fatalf("run %d ordering differs:\n%v\nvs\n%v", run, got, first)
		}
	}
}

// TestSimplifyAllParallel: SimplifyAll under heavy parallelism returns
// one simplified expression per sample — race-detector coverage for
// the worker pool.
func TestSimplifyAllParallel(t *testing.T) {
	g := gen.New(gen.Config{Seed: 43})
	samples := g.Corpus(4)
	out := SimplifyAll(samples, 8)
	if len(out) != len(samples) {
		t.Fatalf("SimplifyAll returned %d results for %d samples", len(out), len(samples))
	}
	for _, s := range samples {
		if out[s.ID] == nil {
			t.Errorf("sample %d: nil simplification", s.ID)
		}
	}
}
