package harness

import (
	"reflect"
	"strings"
	"testing"

	"mbasolver/internal/expr"
	"mbasolver/internal/gen"
	"mbasolver/internal/parser"
	"mbasolver/internal/portfolio"
	"mbasolver/internal/smt"
)

// TestPortfolioColumn: with Config.Portfolio a fourth virtual-solver
// outcome appears per sample, never doing worse than the single
// engines on solved queries, and the table renderer accepts it as a
// regular column.
func TestPortfolioColumn(t *testing.T) {
	g := gen.New(gen.Config{Seed: 41})
	samples := []gen.Sample{g.Linear(), g.Linear(), g.Poly()}
	solvers := smt.All()
	cfg := Config{Width: 6, Budget: smt.Budget{Conflicts: 2000}, Parallelism: 2, Portfolio: true}
	outs := RunBaseline(samples, solvers, cfg)
	if len(outs) != len(samples)*(len(solvers)+1) {
		t.Fatalf("got %d outcomes, want %d", len(outs), len(samples)*(len(solvers)+1))
	}
	perSample := map[int]map[string]Outcome{}
	for _, o := range outs {
		if perSample[o.Sample.ID] == nil {
			perSample[o.Sample.ID] = map[string]Outcome{}
		}
		perSample[o.Sample.ID][o.Solver] = o
	}
	for id, bySolver := range perSample {
		po, ok := bySolver[portfolio.Name]
		if !ok {
			t.Fatalf("sample %d: no portfolio outcome", id)
		}
		anySolved := false
		for _, s := range solvers {
			if bySolver[s.Name()].Solved() {
				anySolved = true
			}
		}
		// Virtual best: if any engine solved it, the portfolio (same
		// budget, racing all engines) must too.
		if anySolved && !po.Solved() {
			t.Errorf("sample %d: an engine solved it but the portfolio did not (%v)", id, po.Status)
		}
	}

	names := append(solverNames(solvers), portfolio.Name)
	tab := SolverTable("Table 2 + virtual best", outs, names)
	if !strings.Contains(tab, portfolio.Name) {
		t.Errorf("SolverTable missing portfolio column:\n%s", tab)
	}
}

// TestRunQueriesDeterministicOrder: identical inputs must yield
// identically ordered outcomes across runs — exported tables and CSVs
// depend on it.
func TestRunQueriesDeterministicOrder(t *testing.T) {
	g := gen.New(gen.Config{Seed: 42})
	samples := g.Corpus(2)
	cfg := Config{Width: 6, Budget: smt.Budget{Conflicts: 300}, Parallelism: 8, Portfolio: true}
	key := func(outs []Outcome) [][2]any {
		ks := make([][2]any, len(outs))
		for i, o := range outs {
			ks[i] = [2]any{o.Sample.ID, o.Solver}
		}
		return ks
	}
	first := key(RunBaseline(samples, smt.All(), cfg))
	for run := 0; run < 3; run++ {
		if got := key(RunBaseline(samples, smt.All(), cfg)); !reflect.DeepEqual(got, first) {
			t.Fatalf("run %d ordering differs:\n%v\nvs\n%v", run, got, first)
		}
	}
}

// TestSimplifyAllParallel: SimplifyAll under heavy parallelism returns
// one simplified expression per sample — race-detector coverage for
// the worker pool.
func TestSimplifyAllParallel(t *testing.T) {
	g := gen.New(gen.Config{Seed: 43})
	samples := g.Corpus(4)
	out := SimplifyAll(samples, 8)
	if len(out) != len(samples) {
		t.Fatalf("SimplifyAll returned %d results for %d samples", len(out), len(samples))
	}
	for _, s := range samples {
		if out[s.ID] == nil {
			t.Errorf("sample %d: nil simplification", s.ID)
		}
	}
}

// TestSimplifyAllDedupesByHash: samples whose obfuscated sides share a
// canonical hash — including commutative reorderings — are simplified
// once and share the resulting expression.
func TestSimplifyAllDedupesByHash(t *testing.T) {
	mk := func(src string) *expr.Expr {
		e, err := parser.Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		return e
	}
	ground := mk("x+y")
	samples := []gen.Sample{
		{ID: 0, Obfuscated: mk("2*(x|y) - (~x&y) - (x&~y)"), Ground: ground},
		// Same canonical form as sample 0: commutative operands swapped.
		{ID: 1, Obfuscated: mk("2*(y|x) - (y&~x) - (~y&x)"), Ground: ground},
		// A genuinely different expression.
		{ID: 2, Obfuscated: mk("(x|y)+(x&y)"), Ground: ground},
	}
	if expr.Hash(samples[0].Obfuscated) != expr.Hash(samples[1].Obfuscated) {
		t.Fatal("test premise broken: samples 0 and 1 should share a canonical hash")
	}

	out := SimplifyAll(samples, 4)
	if len(out) != len(samples) {
		t.Fatalf("got %d results, want %d", len(out), len(samples))
	}
	// The digest group is simplified once, so members share the result.
	if out[0] != out[1] {
		t.Errorf("hash-equal samples got distinct simplifications: %s vs %s", out[0], out[1])
	}
	// Every returned expression is a correct simplification.
	for id, e := range out {
		if e == nil {
			t.Fatalf("sample %d: nil simplification", id)
		}
		res := smt.NewZ3Sim().CheckEquiv(e, ground, 8, smt.Budget{Conflicts: 100000})
		if res.Status != smt.Equivalent {
			t.Errorf("sample %d: simplified form %s not equivalent to ground truth (%v)", id, e, res.Status)
		}
	}
}
