package harness

import (
	"testing"

	"mbasolver/internal/smt"
)

// TestSolverBenchSmoke runs a miniature solver benchmark end to end —
// the same path scripts/bench.sh exercises with defaults — and checks
// the report's invariants: verdicts agree between modes, every
// (solver, mode) pair gets a run, and the incremental runs carry the
// reuse stats the JSON report exists to surface. Kept small enough for
// ci.sh (a few seconds), so it is not short-skipped.
func TestSolverBenchSmoke(t *testing.T) {
	cfg := BenchConfig{Samples: 2, Repeats: 2, Conflicts: 50_000}
	report := RunSolverBench(cfg)

	if report.Mismatches != 0 {
		t.Fatalf("incremental and fresh verdicts disagree on %d queries", report.Mismatches)
	}
	if len(report.Runs) == 0 || len(report.Runs)%2 != 0 {
		t.Fatalf("expected paired fresh/incremental runs, got %d", len(report.Runs))
	}
	for i := 0; i < len(report.Runs); i += 2 {
		fresh, inc := report.Runs[i], report.Runs[i+1]
		if fresh.Mode != "fresh" || inc.Mode != "incremental" || fresh.Solver != inc.Solver {
			t.Fatalf("run pair %d mislabeled: %+v / %+v", i/2, fresh, inc)
		}
		if fresh.Queries != inc.Queries || fresh.Queries == 0 {
			t.Fatalf("%s: query counts differ or zero: fresh %d inc %d",
				fresh.Solver, fresh.Queries, inc.Queries)
		}
		if inc.CircuitVars == 0 || inc.CircuitClause == 0 {
			t.Errorf("%s: incremental run missing circuit stats: %+v", inc.Solver, inc)
		}
	}
	if report.Overall <= 0 {
		t.Errorf("overall speedup not computed: %v", report.Overall)
	}
}

// TestParallelBenchSmoke runs a miniature sharing+cubes benchmark —
// widths where both modes decide quickly — and checks the report's
// invariants: no verdict mismatches, every (width, query) pair
// measured in both modes, refuted queries actually refuted. Kept small
// for ci.sh; the full width sweep (where the timeout separation shows)
// runs via scripts/bench.sh.
func TestParallelBenchSmoke(t *testing.T) {
	report := RunParallelBench(ParallelBenchConfig{Widths: []uint{6, 7}, Conflicts: 20_000})
	if report.Mismatches != 0 {
		t.Fatalf("solo and share+cubes verdicts disagree on %d queries", report.Mismatches)
	}
	if want := 2 * 2 * 2; len(report.Runs) != want {
		t.Fatalf("%d runs, want %d (2 widths x 2 queries x 2 modes)", len(report.Runs), want)
	}
	if report.Cores <= 0 {
		t.Fatalf("cores not recorded: %d", report.Cores)
	}
	for _, r := range report.Runs {
		if r.Query == "refuted" && r.Status != smt.NotEquivalent.String() {
			t.Errorf("width %d %s %s: status %s, want not-equivalent", r.Width, r.Query, r.Mode, r.Status)
		}
		if r.Query == "identity" && r.Status != smt.Equivalent.String() {
			t.Errorf("width %d %s %s: status %s, want equivalent at these widths", r.Width, r.Query, r.Mode, r.Status)
		}
	}
	if report.ParallelTimeouts > report.SoloTimeouts {
		t.Errorf("share+cubes has MORE timeouts (%d) than solo (%d)", report.ParallelTimeouts, report.SoloTimeouts)
	}
}
