// Package harness runs the paper's experiments end-to-end: it feeds
// corpus equations to the SMT solver personalities (§3, Table 2,
// Figures 3–4), repeats the runs after MBA-Solver simplification (§6.1,
// Table 6, Figure 6), compares against the peer tools (§6.2, Table 7)
// and profiles the simplifier itself (§6.3, Table 8). Each experiment
// renders a text table shaped like the paper's.
package harness

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"mbasolver/internal/core"
	"mbasolver/internal/expr"
	"mbasolver/internal/gen"
	"mbasolver/internal/metrics"
	"mbasolver/internal/portfolio"
	"mbasolver/internal/smt"
)

// Config controls one experiment run.
type Config struct {
	// Width is the bitvector width handed to the solvers. The paper
	// uses 64-bit variables with a 1-hour timeout; the default here is
	// 8 bits with a conflict budget, which reproduces the same relative
	// shapes at laptop scale (see EXPERIMENTS.md).
	Width uint
	// Budget bounds each solver query.
	Budget smt.Budget
	// Parallelism is the worker count; default NumCPU.
	Parallelism int
	// Portfolio adds a fourth virtual solver column (portfolio.Name)
	// that races all personalities per query with first-verdict-wins
	// cancellation — the experimental analogue of the paper's virtual
	// best solver.
	Portfolio bool
	// Incremental solves through warm per-worker smt.Contexts instead
	// of a fresh solver per query: corpus samples share interned
	// structure, encoded circuits and learned clauses within each
	// worker. Verdicts are unchanged (see the differential tests in
	// internal/smt); per-query budgets still apply individually.
	Incremental bool
	// Share lets the portfolio personalities exchange short learned
	// clauses during each race (only meaningful with Portfolio).
	Share bool
	// Cubes adds a cube-and-conquer fallback to portfolio queries the
	// screen race cannot decide (only meaningful with Portfolio).
	Cubes bool
}

func (c Config) withDefaults() Config {
	if c.Width == 0 {
		c.Width = 8
	}
	if c.Budget.Conflicts == 0 && c.Budget.Timeout == 0 {
		c.Budget.Conflicts = 30000
	}
	if c.Parallelism == 0 {
		c.Parallelism = runtime.NumCPU()
	}
	return c
}

// Outcome is one (sample, solver) query result.
type Outcome struct {
	Sample  gen.Sample
	Solver  string
	Status  smt.Status
	Elapsed time.Duration
	// Metrics of the expression the solver actually saw (the original
	// or the simplified obfuscated side).
	Metrics metrics.Metrics
}

// Solved reports whether the solver reached the correct verdict
// (corpus equations are identities, so "equivalent" is correct).
func (o Outcome) Solved() bool { return o.Status == smt.Equivalent }

// RunBaseline checks every corpus equation with every solver without
// simplification — the paper's §3 study.
func RunBaseline(samples []gen.Sample, solvers []*smt.Solver, cfg Config) []Outcome {
	cfg = cfg.withDefaults()
	return runQueries(samples, solvers, cfg, func(s gen.Sample) (*expr.Expr, *expr.Expr) {
		return s.Obfuscated, s.Ground
	})
}

// RunSimplified simplifies the obfuscated side with MBA-Solver first,
// then checks equivalence against the ground truth — the paper's §6.1
// experiment. A fresh Simplifier per call keeps the look-up table warm
// across samples, as the prototype does.
func RunSimplified(samples []gen.Sample, solvers []*smt.Solver, cfg Config) []Outcome {
	cfg = cfg.withDefaults()
	simplified := SimplifyAll(samples, cfg.Parallelism)
	return runQueries(samples, solvers, cfg, func(s gen.Sample) (*expr.Expr, *expr.Expr) {
		return simplified[s.ID], s.Ground
	})
}

// SimplifyAll runs MBA-Solver over the corpus concurrently and returns
// the simplified obfuscated sides keyed by sample ID. Samples whose
// obfuscated sides are structurally identical (equal canonical
// expr.Hash — generated corpora repeat rewrite products often) are
// simplified once: one representative per digest group runs through the
// simplifier and the result fans back to every member.
func SimplifyAll(samples []gen.Sample, parallelism int) map[int]*expr.Expr {
	if parallelism <= 0 {
		parallelism = runtime.NumCPU()
	}

	type group struct {
		rep *expr.Expr // representative obfuscated side
		ids []int      // sample IDs sharing its canonical form
	}
	byDigest := make(map[expr.Digest]*group, len(samples))
	var order []*group // deterministic dispatch order
	for _, s := range samples {
		d := expr.Hash(s.Obfuscated)
		g, ok := byDigest[d]
		if !ok {
			g = &group{rep: s.Obfuscated}
			byDigest[d] = g
			order = append(order, g)
		}
		g.ids = append(g.ids, s.ID)
	}

	out := make(map[int]*expr.Expr, len(samples))
	var mu sync.Mutex
	var wg sync.WaitGroup
	work := make(chan *group)
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			simp := core.Default() // Simplifier is not goroutine safe
			for g := range work {
				r := simp.Simplify(g.rep)
				mu.Lock()
				for _, id := range g.ids {
					out[id] = r
				}
				mu.Unlock()
			}
		}()
	}
	for _, g := range order {
		work <- g
	}
	close(work)
	wg.Wait()
	return out
}

// runQueries fans (sample × solver) queries over a worker pool. With
// cfg.Portfolio an extra virtual-solver query racing all personalities
// runs per sample. Each worker writes its Outcome to a pre-assigned
// slot of the result slice, so the returned order is deterministic
// across runs regardless of goroutine completion order (exported
// tables and CSVs must be byte-stable for identical inputs); the final
// sort then fixes the ordering contract to (sample ID, solver name).
func runQueries(samples []gen.Sample, solvers []*smt.Solver, cfg Config,
	sides func(gen.Sample) (*expr.Expr, *expr.Expr)) []Outcome {

	type job struct {
		slot      int
		sample    gen.Sample
		portfolio bool
		solver    *smt.Solver
	}
	perSample := len(solvers)
	if cfg.Portfolio {
		perSample++
	}
	jobs := make(chan job)
	results := make([]Outcome, len(samples)*perSample)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Incremental mode: each worker owns one warm context per
			// personality (contexts are single-goroutine) plus one
			// racing set for portfolio jobs, reused across its jobs.
			var ctxs map[*smt.Solver]*smt.Context
			var cset *portfolio.ContextSet
			if cfg.Incremental {
				ctxs = make(map[*smt.Solver]*smt.Context, len(solvers))
				for _, sv := range solvers {
					ctxs[sv] = sv.NewContext(smt.ContextOptions{})
				}
				if cfg.Portfolio {
					cset = portfolio.NewContextSet(solvers, smt.ContextOptions{})
					if cfg.Share {
						cset.EnableSharing(0)
					}
					if cfg.Cubes {
						cset.EnableCubes(smt.CubeOptions{})
					}
				}
			}
			var popts portfolio.ParallelOptions
			if cfg.Share {
				popts.ShareCapacity = 256
			}
			if cfg.Cubes {
				popts.Cubes = &smt.CubeOptions{}
			}
			for j := range jobs {
				lhs, rhs := sides(j.sample)
				o := Outcome{
					Sample:  j.sample,
					Metrics: metrics.Measure(lhs),
				}
				if j.portfolio {
					var res portfolio.Result
					switch {
					case cset != nil:
						res = cset.CheckEquiv(lhs, rhs, cfg.Width, cfg.Budget)
					case cfg.Share || cfg.Cubes:
						res = portfolio.CheckEquivParallel(solvers, lhs, rhs, cfg.Width, cfg.Budget, popts)
					default:
						res = portfolio.CheckEquiv(solvers, lhs, rhs, cfg.Width, cfg.Budget)
					}
					o.Solver = portfolio.Name
					o.Status = res.Status
					o.Elapsed = res.Elapsed
				} else {
					var res smt.Result
					if ctxs != nil {
						res = ctxs[j.solver].CheckEquiv(lhs, rhs, cfg.Width, cfg.Budget)
					} else {
						res = j.solver.CheckEquiv(lhs, rhs, cfg.Width, cfg.Budget)
					}
					o.Solver = j.solver.Name()
					o.Status = res.Status
					o.Elapsed = res.Elapsed
				}
				results[j.slot] = o
			}
		}()
	}
	slot := 0
	for _, s := range samples {
		for _, sv := range solvers {
			jobs <- job{slot: slot, sample: s, solver: sv}
			slot++
		}
		if cfg.Portfolio {
			jobs <- job{slot: slot, sample: s, portfolio: true}
			slot++
		}
	}
	close(jobs)
	wg.Wait()
	sort.SliceStable(results, func(i, j int) bool {
		if results[i].Sample.ID != results[j].Sample.ID {
			return results[i].Sample.ID < results[j].Sample.ID
		}
		return results[i].Solver < results[j].Solver
	})
	return results
}

// categoryStats aggregates outcomes for one (kind, solver) cell of
// Table 2 / Table 6.
type categoryStats struct {
	N    int
	Min  time.Duration
	Max  time.Duration
	Sum  time.Duration
	Runs int
}

func (c *categoryStats) add(o Outcome) {
	c.Runs++
	if !o.Solved() {
		return
	}
	if c.N == 0 || o.Elapsed < c.Min {
		c.Min = o.Elapsed
	}
	if o.Elapsed > c.Max {
		c.Max = o.Elapsed
	}
	c.N++
	c.Sum += o.Elapsed
}

func (c *categoryStats) avg() time.Duration {
	if c.N == 0 {
		return 0
	}
	return c.Sum / time.Duration(c.N)
}

func sec(d time.Duration) float64 { return d.Seconds() }

// SolverTable renders a Table 2 / Table 6 style report: per MBA
// category and solver, the number solved and the min/max/average
// solving times.
func SolverTable(title string, outcomes []Outcome, solvers []string) string {
	kinds := []metrics.Kind{metrics.KindLinear, metrics.KindPoly, metrics.KindNonPoly}
	cells := map[metrics.Kind]map[string]*categoryStats{}
	for _, k := range kinds {
		cells[k] = map[string]*categoryStats{}
		for _, s := range solvers {
			cells[k][s] = &categoryStats{}
		}
	}
	perSolverTotal := map[string]int{}
	perSolverRuns := map[string]int{}
	for _, o := range outcomes {
		cells[o.Sample.Kind][o.Solver].add(o)
		perSolverRuns[o.Solver]++
		if o.Solved() {
			perSolverTotal[o.Solver]++
		}
	}

	var b tableBuilder
	b.titlef("%s", title)
	header := []string{"MBA Type"}
	for _, s := range solvers {
		header = append(header, s+" N", s+" [Tmin,Tmax]", s+" Tavg")
	}
	b.row(header...)
	for _, k := range kinds {
		row := []string{kindLabel(k)}
		for _, s := range solvers {
			c := cells[k][s]
			row = append(row,
				fmt.Sprintf("%d", c.N),
				fmt.Sprintf("[%.3f, %.3f]", sec(c.Min), sec(c.Max)),
				fmt.Sprintf("%.3f", sec(c.avg())),
			)
		}
		b.row(row...)
	}
	total := []string{"Total Solved"}
	for _, s := range solvers {
		runs := perSolverRuns[s]
		pct := 0.0
		if runs > 0 {
			pct = 100 * float64(perSolverTotal[s]) / float64(runs)
		}
		total = append(total, fmt.Sprintf("%d (%.1f%%)", perSolverTotal[s], pct), "", "")
	}
	b.row(total...)
	return b.String()
}

func kindLabel(k metrics.Kind) string {
	switch k {
	case metrics.KindLinear:
		return "Linear MBA"
	case metrics.KindPoly:
		return "Poly MBA"
	default:
		return "Non-poly MBA"
	}
}
