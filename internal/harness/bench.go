package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"mbasolver/internal/bv"
	"mbasolver/internal/gen"
	"mbasolver/internal/smt"
)

// BenchConfig sizes the incremental-vs-fresh solver benchmark. The
// workload is a repeated corpus: every equation is queried Repeats
// times in round-robin order, which is the query mix incremental
// contexts exist for (verification pipelines re-check the same or
// structurally overlapping equations as obfuscated binaries are
// re-analyzed). Zero fields take defaults.
type BenchConfig struct {
	Samples int   `json:"samples"` // linear corpus equations (default 6)
	Seed    int64 `json:"seed"`    // corpus generator seed (default 11)
	Width   uint  `json:"width"`   // solver bitvector width (default 8)
	Repeats int   `json:"repeats"` // round-robin passes over the corpus (default 4)
	// Conflicts is the per-query CDCL budget (default 200000 — enough
	// that the small linear corpus solves outright in both modes, so
	// the comparison measures speed, not solve rate).
	Conflicts int64 `json:"conflicts"`
}

func (c BenchConfig) withDefaults() BenchConfig {
	if c.Samples <= 0 {
		c.Samples = 6
	}
	if c.Seed == 0 {
		c.Seed = 11
	}
	if c.Width == 0 {
		c.Width = 8
	}
	if c.Repeats <= 0 {
		c.Repeats = 4
	}
	if c.Conflicts == 0 {
		c.Conflicts = 200_000
	}
	return c
}

// BenchRun reports one (solver, mode) pass over the repeated corpus.
type BenchRun struct {
	Solver   string  `json:"solver"`
	Mode     string  `json:"mode"` // "fresh" or "incremental"
	WallMS   float64 `json:"wall_ms"`
	Queries  int     `json:"queries"`
	Solved   int     `json:"solved"`
	Timeouts int     `json:"timeouts"`
	// Conflicts is the total CDCL conflicts spent across the pass — the
	// deterministic "search effort" the wall clock is buying.
	Conflicts int64 `json:"conflicts"`

	// Incremental-only observability (zero for fresh runs): interning
	// and encoding reuse, activation-literal reuse, and the size of the
	// shared circuit left in the context's persistent solvers.
	InternHits    int64   `json:"intern_hits,omitempty"`
	BlastHitRate  float64 `json:"blast_hit_rate,omitempty"` // encoding-cache hits / lookups
	GateHitRate   float64 `json:"gate_hit_rate,omitempty"`  // gate-hash hits / lookups
	ActHits       int64   `json:"act_hits,omitempty"`       // queries answered via a reused activation literal
	CircuitVars   int     `json:"circuit_vars,omitempty"`
	CircuitClause int     `json:"circuit_clauses,omitempty"`
}

// BenchReport is the full benchmark result, serialized to
// BENCH_solver.json by scripts/bench.sh.
type BenchReport struct {
	Config BenchConfig `json:"config"`
	Runs   []BenchRun  `json:"runs"`
	// Speedup is fresh wall time over incremental wall time, per solver
	// and overall (total fresh wall / total incremental wall).
	Speedup map[string]float64 `json:"speedup"`
	Overall float64            `json:"overall_speedup"`
	// Mismatches counts queries where the two modes returned different
	// definitive verdicts; anything but zero is a bug (the differential
	// tests in internal/smt pin this).
	Mismatches int `json:"mismatches"`
}

// RunSolverBench measures every personality on the repeated corpus in
// fresh mode (one solver instance per query, the pre-incremental
// architecture) and incremental mode (one warm smt.Context per
// personality), and cross-checks that the verdicts agree.
func RunSolverBench(cfg BenchConfig) BenchReport {
	cfg = cfg.withDefaults()
	g := gen.New(gen.Config{Seed: cfg.Seed, LinearTerms: 4, CoeffRange: 3})
	type query struct{ lhs, rhs *bv.Term }
	queries := make([]query, 0, cfg.Samples*cfg.Repeats)
	base := make([]query, 0, cfg.Samples)
	// Screen candidates with a bounded fresh solve: random linear MBA
	// occasionally lands on equations that need orders of magnitude more
	// search than their siblings, and one such sample would turn the
	// benchmark into a measurement of that sample alone. The screen is
	// conflict-budgeted, so the kept corpus is deterministic per seed.
	screen := smt.NewZ3Sim()
	for attempts := 0; len(base) < cfg.Samples && attempts < 20*cfg.Samples; attempts++ {
		s := g.Linear()
		lhs, rhs := s.Equation()
		ta, tb := bv.FromExpr(lhs, cfg.Width), bv.FromExpr(rhs, cfg.Width)
		if screen.CheckTermEquiv(ta, tb, smt.Budget{Conflicts: 10_000}).Status != smt.Equivalent {
			continue
		}
		base = append(base, query{ta, tb})
	}
	for r := 0; r < cfg.Repeats; r++ {
		queries = append(queries, base...)
	}
	budget := smt.Budget{Conflicts: cfg.Conflicts}

	report := BenchReport{Config: cfg, Speedup: map[string]float64{}}
	var totalFresh, totalInc time.Duration
	for _, s := range smt.All() {
		verdicts := make([]smt.Status, len(queries))

		fresh := BenchRun{Solver: s.Name(), Mode: "fresh", Queries: len(queries)}
		start := time.Now()
		for i, q := range queries {
			res := s.CheckTermEquiv(q.lhs, q.rhs, budget)
			verdicts[i] = res.Status
			benchCount(&fresh, res)
		}
		freshWall := time.Since(start)
		fresh.WallMS = durMSf(freshWall)

		ctx := s.NewContext(smt.ContextOptions{})
		inc := BenchRun{Solver: s.Name(), Mode: "incremental", Queries: len(queries)}
		start = time.Now()
		for i, q := range queries {
			res := ctx.CheckTermEquiv(q.lhs, q.rhs, budget)
			if definitive(res.Status) && definitive(verdicts[i]) && res.Status != verdicts[i] {
				report.Mismatches++
			}
			benchCount(&inc, res)
		}
		incWall := time.Since(start)
		inc.WallMS = durMSf(incWall)

		st := ctx.Stats()
		inc.InternHits = st.Intern.Hits
		inc.ActHits = st.ActHits
		if lookups := st.Blast.CacheHits + st.Blast.CacheMisses; lookups > 0 {
			inc.BlastHitRate = float64(st.Blast.CacheHits) / float64(lookups)
		}
		if lookups := st.Blast.GateHits + st.Blast.GateMisses; lookups > 0 {
			inc.GateHitRate = float64(st.Blast.GateHits) / float64(lookups)
		}
		inc.CircuitVars = st.Vars
		inc.CircuitClause = st.Clauses

		report.Runs = append(report.Runs, fresh, inc)
		if incWall > 0 {
			report.Speedup[s.Name()] = freshWall.Seconds() / incWall.Seconds()
		}
		totalFresh += freshWall
		totalInc += incWall
	}
	if totalInc > 0 {
		report.Overall = totalFresh.Seconds() / totalInc.Seconds()
	}
	return report
}

func definitive(s smt.Status) bool { return s != smt.Timeout }

func benchCount(run *BenchRun, res smt.Result) {
	run.Conflicts += res.Conflicts
	switch res.Status {
	case smt.Equivalent:
		run.Solved++
	case smt.Timeout:
		run.Timeouts++
	}
}

func durMSf(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// WriteBenchJSON serializes the report as indented JSON.
func WriteBenchJSON(w io.Writer, r BenchReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return fmt.Errorf("encode bench report: %w", err)
	}
	return nil
}
