package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"mbasolver/internal/bv"
	"mbasolver/internal/expr"
	"mbasolver/internal/gen"
	"mbasolver/internal/parser"
	"mbasolver/internal/portfolio"
	"mbasolver/internal/smt"
)

// BenchConfig sizes the incremental-vs-fresh solver benchmark. The
// workload is a repeated corpus: every equation is queried Repeats
// times in round-robin order, which is the query mix incremental
// contexts exist for (verification pipelines re-check the same or
// structurally overlapping equations as obfuscated binaries are
// re-analyzed). Zero fields take defaults.
type BenchConfig struct {
	Samples int   `json:"samples"` // linear corpus equations (default 6)
	Seed    int64 `json:"seed"`    // corpus generator seed (default 11)
	Width   uint  `json:"width"`   // solver bitvector width (default 8)
	Repeats int   `json:"repeats"` // round-robin passes over the corpus (default 4)
	// Conflicts is the per-query CDCL budget (default 200000 — enough
	// that the small linear corpus solves outright in both modes, so
	// the comparison measures speed, not solve rate).
	Conflicts int64 `json:"conflicts"`
}

func (c BenchConfig) withDefaults() BenchConfig {
	if c.Samples <= 0 {
		c.Samples = 6
	}
	if c.Seed == 0 {
		c.Seed = 11
	}
	if c.Width == 0 {
		c.Width = 8
	}
	if c.Repeats <= 0 {
		c.Repeats = 4
	}
	if c.Conflicts == 0 {
		c.Conflicts = 200_000
	}
	return c
}

// BenchRun reports one (solver, mode) pass over the repeated corpus.
type BenchRun struct {
	Solver   string  `json:"solver"`
	Mode     string  `json:"mode"` // "fresh" or "incremental"
	WallMS   float64 `json:"wall_ms"`
	Queries  int     `json:"queries"`
	Solved   int     `json:"solved"`
	Timeouts int     `json:"timeouts"`
	// Conflicts is the total CDCL conflicts spent across the pass — the
	// deterministic "search effort" the wall clock is buying.
	Conflicts int64 `json:"conflicts"`

	// Incremental-only observability (zero for fresh runs): interning
	// and encoding reuse, activation-literal reuse, and the size of the
	// shared circuit left in the context's persistent solvers.
	InternHits    int64   `json:"intern_hits,omitempty"`
	BlastHitRate  float64 `json:"blast_hit_rate,omitempty"` // encoding-cache hits / lookups
	GateHitRate   float64 `json:"gate_hit_rate,omitempty"`  // gate-hash hits / lookups
	ActHits       int64   `json:"act_hits,omitempty"`       // queries answered via a reused activation literal
	CircuitVars   int     `json:"circuit_vars,omitempty"`
	CircuitClause int     `json:"circuit_clauses,omitempty"`
}

// BenchReport is the full benchmark result, serialized to
// BENCH_solver.json by scripts/bench.sh.
type BenchReport struct {
	Config BenchConfig `json:"config"`
	Runs   []BenchRun  `json:"runs"`
	// Speedup is fresh wall time over incremental wall time, per solver
	// and overall (total fresh wall / total incremental wall).
	Speedup map[string]float64 `json:"speedup"`
	Overall float64            `json:"overall_speedup"`
	// Mismatches counts queries where the two modes returned different
	// definitive verdicts; anything but zero is a bug (the differential
	// tests in internal/smt pin this).
	Mismatches int `json:"mismatches"`
	// Parallel is the clause-sharing + cube-and-conquer comparison
	// (RunParallelBench), attached by mbabench -bench.
	Parallel *ParallelBench `json:"parallel,omitempty"`
}

// ParallelBenchConfig sizes the sharing+cubes benchmark. The workload
// is the multiplier MBA identity x*y == (x&~y)*(~x&y) + (x&y)*(x|y)
// instantiated at several widths, plus an off-by-one refuted variant
// per width: width is a clean hardness dial for the same structure
// (the 8-bit instance needs ~100k conflicts solo), so a fixed
// per-query conflict budget cleanly separates what each mode can
// decide. Conflict budgets, not wall clock, are the yardstick — the
// comparison is deterministic and meaningful on any core count.
type ParallelBenchConfig struct {
	Widths    []uint `json:"widths"`    // identity widths (default 6,7,8,9)
	Conflicts int64  `json:"conflicts"` // per-query conflict budget (default 20000)
}

func (c ParallelBenchConfig) withDefaults() ParallelBenchConfig {
	if len(c.Widths) == 0 {
		c.Widths = []uint{6, 7, 8, 9}
	}
	if c.Conflicts == 0 {
		c.Conflicts = 20_000
	}
	return c
}

// ParallelBenchRun is one (query, mode) measurement.
type ParallelBenchRun struct {
	Width     uint    `json:"width"`
	Query     string  `json:"query"` // "identity" or "refuted"
	Mode      string  `json:"mode"`  // "solo" or "share+cubes"
	Status    string  `json:"status"`
	Winner    string  `json:"winner,omitempty"`
	Conflicts int64   `json:"conflicts"`
	WallMS    float64 `json:"wall_ms"`
}

// ParallelBench compares the plain first-verdict-wins race ("solo")
// against the cooperating portfolio ("share+cubes": clause sharing
// during the race, cube-and-conquer fallback when the screen cannot
// decide) at a fixed per-query conflict budget. The headline numbers
// are the timeout counts: cubing converts budget-starved timeouts into
// verdicts because each cube spends the budget on a strictly smaller
// subproblem. Cores records runtime.NumCPU() for the run — on a
// single-core machine the wall-clock columns measure interleaved
// execution and only the conflict/timeout columns are comparable
// across machines.
type ParallelBench struct {
	Config           ParallelBenchConfig `json:"config"`
	Cores            int                 `json:"cores"`
	Runs             []ParallelBenchRun  `json:"runs"`
	SoloTimeouts     int                 `json:"solo_timeouts"`
	ParallelTimeouts int                 `json:"parallel_timeouts"`
	// Mismatches counts queries where the two modes returned different
	// definitive verdicts; anything but zero is a soundness bug (the
	// differential tests in internal/smt and internal/portfolio pin
	// this).
	Mismatches int `json:"mismatches"`
}

// RunParallelBench measures the solo race against sharing+cubes on the
// width-graded multiplier identity family.
func RunParallelBench(cfg ParallelBenchConfig) ParallelBench {
	cfg = cfg.withDefaults()
	report := ParallelBench{Config: cfg, Cores: runtime.NumCPU()}

	identA := parser.MustParse("x*y")
	identB := parser.MustParse("(x&~y)*(~x&y) + (x&y)*(x|y)")
	refutedB := parser.MustParse("(x&~y)*(~x&y) + (x&y)*(x|y) + 1")

	budget := smt.Budget{Conflicts: cfg.Conflicts}
	cubeOpts := &smt.CubeOptions{ScreenConflicts: 2000, Workers: 2, ShareCapacity: 256}
	queries := []struct {
		name string
		b    *expr.Expr
	}{{"identity", identB}, {"refuted", refutedB}}

	for _, w := range cfg.Widths {
		for _, q := range queries {
			verdicts := make(map[string]smt.Status)
			for _, mode := range []string{"solo", "share+cubes"} {
				solvers := smt.All()
				start := time.Now()
				var res portfolio.Result
				if mode == "solo" {
					res = portfolio.CheckEquiv(solvers, identA, q.b, w, budget)
				} else {
					res = portfolio.CheckEquivParallel(solvers, identA, q.b, w, budget,
						portfolio.ParallelOptions{ShareCapacity: 256, Cubes: cubeOpts})
				}
				run := ParallelBenchRun{
					Width:  w,
					Query:  q.name,
					Mode:   mode,
					Status: res.Status.String(),
					Winner: res.Winner,
					WallMS: durMSf(time.Since(start)),
				}
				for _, e := range res.Engines {
					run.Conflicts += e.Conflicts
				}
				report.Runs = append(report.Runs, run)
				verdicts[mode] = res.Status
				if res.Status == smt.Timeout {
					if mode == "solo" {
						report.SoloTimeouts++
					} else {
						report.ParallelTimeouts++
					}
				}
			}
			solo, par := verdicts["solo"], verdicts["share+cubes"]
			if definitive(solo) && definitive(par) && solo != par {
				report.Mismatches++
			}
		}
	}
	return report
}

// RunSolverBench measures every personality on the repeated corpus in
// fresh mode (one solver instance per query, the pre-incremental
// architecture) and incremental mode (one warm smt.Context per
// personality), and cross-checks that the verdicts agree.
func RunSolverBench(cfg BenchConfig) BenchReport {
	cfg = cfg.withDefaults()
	g := gen.New(gen.Config{Seed: cfg.Seed, LinearTerms: 4, CoeffRange: 3})
	type query struct{ lhs, rhs *bv.Term }
	queries := make([]query, 0, cfg.Samples*cfg.Repeats)
	base := make([]query, 0, cfg.Samples)
	// Screen candidates with a bounded fresh solve: random linear MBA
	// occasionally lands on equations that need orders of magnitude more
	// search than their siblings, and one such sample would turn the
	// benchmark into a measurement of that sample alone. The screen is
	// conflict-budgeted, so the kept corpus is deterministic per seed.
	screen := smt.NewZ3Sim()
	for attempts := 0; len(base) < cfg.Samples && attempts < 20*cfg.Samples; attempts++ {
		s := g.Linear()
		lhs, rhs := s.Equation()
		ta, tb := bv.FromExpr(lhs, cfg.Width), bv.FromExpr(rhs, cfg.Width)
		if screen.CheckTermEquiv(ta, tb, smt.Budget{Conflicts: 10_000}).Status != smt.Equivalent {
			continue
		}
		base = append(base, query{ta, tb})
	}
	for r := 0; r < cfg.Repeats; r++ {
		queries = append(queries, base...)
	}
	budget := smt.Budget{Conflicts: cfg.Conflicts}

	report := BenchReport{Config: cfg, Speedup: map[string]float64{}}
	var totalFresh, totalInc time.Duration
	for _, s := range smt.All() {
		verdicts := make([]smt.Status, len(queries))

		fresh := BenchRun{Solver: s.Name(), Mode: "fresh", Queries: len(queries)}
		start := time.Now()
		for i, q := range queries {
			res := s.CheckTermEquiv(q.lhs, q.rhs, budget)
			verdicts[i] = res.Status
			benchCount(&fresh, res)
		}
		freshWall := time.Since(start)
		fresh.WallMS = durMSf(freshWall)

		ctx := s.NewContext(smt.ContextOptions{})
		inc := BenchRun{Solver: s.Name(), Mode: "incremental", Queries: len(queries)}
		start = time.Now()
		for i, q := range queries {
			res := ctx.CheckTermEquiv(q.lhs, q.rhs, budget)
			if definitive(res.Status) && definitive(verdicts[i]) && res.Status != verdicts[i] {
				report.Mismatches++
			}
			benchCount(&inc, res)
		}
		incWall := time.Since(start)
		inc.WallMS = durMSf(incWall)

		st := ctx.Stats()
		inc.InternHits = st.Intern.Hits
		inc.ActHits = st.ActHits
		if lookups := st.Blast.CacheHits + st.Blast.CacheMisses; lookups > 0 {
			inc.BlastHitRate = float64(st.Blast.CacheHits) / float64(lookups)
		}
		if lookups := st.Blast.GateHits + st.Blast.GateMisses; lookups > 0 {
			inc.GateHitRate = float64(st.Blast.GateHits) / float64(lookups)
		}
		inc.CircuitVars = st.Vars
		inc.CircuitClause = st.Clauses

		report.Runs = append(report.Runs, fresh, inc)
		if incWall > 0 {
			report.Speedup[s.Name()] = freshWall.Seconds() / incWall.Seconds()
		}
		totalFresh += freshWall
		totalInc += incWall
	}
	if totalInc > 0 {
		report.Overall = totalFresh.Seconds() / totalInc.Seconds()
	}
	return report
}

func definitive(s smt.Status) bool { return s != smt.Timeout }

func benchCount(run *BenchRun, res smt.Result) {
	run.Conflicts += res.Conflicts
	switch res.Status {
	case smt.Equivalent:
		run.Solved++
	case smt.Timeout:
		run.Timeouts++
	}
}

func durMSf(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// WriteBenchJSON serializes the report as indented JSON.
func WriteBenchJSON(w io.Writer, r BenchReport) error { return writeJSONReport(w, r) }

// WriteClusterBenchJSON serializes the cluster report as indented JSON.
func WriteClusterBenchJSON(w io.Writer, r ClusterBenchReport) error { return writeJSONReport(w, r) }

func writeJSONReport(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return fmt.Errorf("encode bench report: %w", err)
	}
	return nil
}
