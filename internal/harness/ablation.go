package harness

import (
	"fmt"
	"time"

	"mbasolver/internal/core"
	"mbasolver/internal/gen"
	"mbasolver/internal/metrics"
)

// AblationRow reports one simplifier configuration over the corpus.
type AblationRow struct {
	Config        string
	AltBefore     float64
	AltAfter      float64
	AvgTime       time.Duration
	TableHits     int
	Bailouts      int
	NotSimplified int // samples whose output alternation stayed above 2
}

// AblationConfigs returns the configurations the DESIGN.md ablation
// studies: everything on, and each §4.5 optimization (plus the basis
// choice) toggled individually.
func AblationConfigs() map[string]core.Options {
	return map[string]core.Options{
		"full":        {},
		"no-table":    {DisableTable: true},
		"no-cse":      {DisableCSE: true},
		"no-finalopt": {DisableFinalOpt: true},
		"basis-disj":  {Basis: core.BasisDisjunction},
	}
}

// RunAblation simplifies the corpus under each configuration and
// aggregates effectiveness (alternation reduction) and cost.
func RunAblation(samples []gen.Sample) []AblationRow {
	order := []string{"full", "no-table", "no-cse", "no-finalopt", "basis-disj"}
	configs := AblationConfigs()
	rows := make([]AblationRow, 0, len(order))
	for _, name := range order {
		opts := configs[name]
		s := core.New(opts)
		row := AblationRow{Config: name}
		start := time.Now()
		for _, sample := range samples {
			before := metrics.Alternation(sample.Obfuscated)
			out := s.Simplify(sample.Obfuscated)
			after := metrics.Alternation(out)
			row.AltBefore += float64(before)
			row.AltAfter += float64(after)
			if after > 2 {
				row.NotSimplified++
			}
		}
		n := len(samples)
		if n > 0 {
			row.AltBefore /= float64(n)
			row.AltAfter /= float64(n)
			row.AvgTime = time.Since(start) / time.Duration(n)
		}
		st := s.Stats()
		row.TableHits = st.TableHits
		row.Bailouts = st.Bailouts
		rows = append(rows, row)
	}
	return rows
}

// AblationTable renders the ablation comparison.
func AblationTable(rows []AblationRow) string {
	var b tableBuilder
	b.titlef("Ablation: MBA-Solver configurations over the corpus")
	b.row("Config", "Alt before", "Alt after", "A/B %", "Residual>2", "Avg time", "Table hits", "Bailouts")
	for _, r := range rows {
		ratio := 0.0
		if r.AltBefore > 0 {
			ratio = 100 * r.AltAfter / r.AltBefore
		}
		b.row(r.Config,
			fmt.Sprintf("%.1f", r.AltBefore),
			fmt.Sprintf("%.1f", r.AltAfter),
			fmt.Sprintf("%.1f%%", ratio),
			fmt.Sprintf("%d", r.NotSimplified),
			fmt.Sprintf("%.4fs", sec(r.AvgTime)),
			fmt.Sprintf("%d", r.TableHits),
			fmt.Sprintf("%d", r.Bailouts))
	}
	return b.String()
}
