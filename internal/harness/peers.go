package harness

import (
	"runtime"
	"sync"
	"time"

	"mbasolver/internal/core"
	"mbasolver/internal/expr"
	"mbasolver/internal/gen"
	"mbasolver/internal/metrics"
	"mbasolver/internal/peers/sspam"
	"mbasolver/internal/peers/syntia"
	"mbasolver/internal/smt"
)

// Tool is one simplifier under comparison in Table 7.
type Tool struct {
	Name string
	// New returns a per-worker instance (tools are not goroutine safe).
	New func() func(*expr.Expr) *expr.Expr
}

// DefaultTools returns the Table 7 lineup: SSPAM-sim, Syntia-sim and
// MBA-Solver.
func DefaultTools(width uint) []Tool {
	return []Tool{
		{
			Name: "SSPAM",
			New: func() func(*expr.Expr) *expr.Expr {
				s := sspam.NewWidth(width)
				return s.Simplify
			},
		},
		{
			Name: "Syntia",
			New: func() func(*expr.Expr) *expr.Expr {
				n := 0
				return func(e *expr.Expr) *expr.Expr {
					n++
					s := syntia.New(syntia.Config{Seed: int64(n), Width: width})
					return s.Synthesize(e).Expr
				}
			},
		},
		{
			Name: "MBA-Solver",
			New: func() func(*expr.Expr) *expr.Expr {
				s := core.New(core.Options{Width: 64})
				return s.Simplify
			},
		},
	}
}

// RunPeers runs each tool over the corpus, has every solver
// equivalence-check each tool's output against the ground truth, and
// aggregates the paper's Table 7 columns. The returned outcomes of the
// MBA-Solver tool under z3sim also feed Figure 6.
func RunPeers(samples []gen.Sample, tools []Tool, solvers []*smt.Solver, cfg Config) []PeerRow {
	cfg = cfg.withDefaults()
	rows := make([]PeerRow, 0, len(tools))
	for _, tool := range tools {
		rows = append(rows, runPeer(samples, tool, solvers, cfg))
	}
	return rows
}

func runPeer(samples []gen.Sample, tool Tool, solvers []*smt.Solver, cfg Config) PeerRow {
	type res struct {
		sample     gen.Sample
		simplified *expr.Expr
		verdict    map[string]smt.Result
	}
	results := make([]res, len(samples))

	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < cfg.Parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			simplify := tool.New()
			for i := range idx {
				s := samples[i]
				simplified := simplify(s.Obfuscated)
				verdict := map[string]smt.Result{}
				for _, sv := range solvers {
					verdict[sv.Name()] = sv.CheckEquiv(simplified, s.Ground, cfg.Width, cfg.Budget)
				}
				results[i] = res{sample: s, simplified: simplified, verdict: verdict}
			}
		}()
	}
	for i := range samples {
		idx <- i
	}
	close(idx)
	wg.Wait()

	row := PeerRow{Tool: tool.Name, SolveAvg: map[string]time.Duration{}}
	sums := map[string]time.Duration{}
	counts := map[string]int{}
	var altBefore, altAfter float64
	for _, r := range results {
		// A sample's verdict: wrong if any solver refutes it, correct
		// if at least one proves it, timeout otherwise (the corpus is
		// all identities, so a refutation is definitive).
		wrong, correct := false, false
		for _, v := range r.verdict {
			switch v.Status {
			case smt.NotEquivalent:
				wrong = true
			case smt.Equivalent:
				correct = true
			}
		}
		switch {
		case wrong:
			row.Wrong++
		case correct:
			row.Correct++
			altBefore += float64(metrics.Alternation(r.sample.Obfuscated))
			altAfter += float64(metrics.Alternation(r.simplified))
			for name, v := range r.verdict {
				if v.Status == smt.Equivalent {
					sums[name] += v.Elapsed
					counts[name]++
				}
			}
		default:
			row.Out++
		}
	}
	if row.Correct > 0 {
		row.AltBefore = altBefore / float64(row.Correct)
		row.AltAfter = altAfter / float64(row.Correct)
	}
	for name, sum := range sums {
		row.SolveAvg[name] = sum / time.Duration(counts[name])
	}
	return row
}

// ProfileSimplifier measures MBA-Solver's own time and memory across
// inputs bucketed by MBA alternation (paper Table 8). Buckets are the
// paper's 10/20/30/40 with a ±40% capture window.
func ProfileSimplifier(g *gen.Generator, perBucket int) []Table8Row {
	targets := []int{10, 20, 30, 40}
	buckets := map[int][]*expr.Expr{}
	// Draw non-poly samples (the richest alternation spread) until
	// each bucket is filled or the draw budget is exhausted.
	for draws := 0; draws < perBucket*400; draws++ {
		s := g.NonPoly()
		alt := metrics.Alternation(s.Obfuscated)
		for _, t := range targets {
			lo, hi := t-t*2/5, t+t*2/5
			if alt >= lo && alt <= hi && len(buckets[t]) < perBucket {
				buckets[t] = append(buckets[t], s.Obfuscated)
				break
			}
		}
		full := true
		for _, t := range targets {
			if len(buckets[t]) < perBucket {
				full = false
				break
			}
		}
		if full {
			break
		}
	}

	rows := make([]Table8Row, 0, len(targets))
	for _, t := range targets {
		inputs := buckets[t]
		if len(inputs) == 0 {
			rows = append(rows, Table8Row{Alternation: t})
			continue
		}
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now()
		for _, e := range inputs {
			s := core.Default() // cold simplifier per input, like the paper's per-run cost
			s.Simplify(e)
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		rows = append(rows, Table8Row{
			Alternation: t,
			Samples:     len(inputs),
			Time:        elapsed / time.Duration(len(inputs)),
			AllocBytes:  (after.TotalAlloc - before.TotalAlloc) / uint64(len(inputs)),
		})
	}
	return rows
}
