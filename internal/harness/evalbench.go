package harness

import (
	"io"
	"math/rand"
	"time"

	"mbasolver/internal/eval"
	"mbasolver/internal/eval/bitslice"
	"mbasolver/internal/expr"
	"mbasolver/internal/gen"
)

// EvalBenchConfig sizes the evaluation-engine benchmark: the
// tree-walking interpreter against the flat bytecode program (scalar,
// bitsliced, and cost-model auto selection), over a generated MBA
// corpus. Zero fields take defaults.
type EvalBenchConfig struct {
	// Samples is the number of expressions drawn per corpus category
	// (linear, poly, non-poly); the corpus is 3×Samples (default 25).
	Samples int   `json:"samples"`
	Seed    int64 `json:"seed"`  // corpus + input generator seed (default 17)
	Width   uint  `json:"width"` // evaluation width (default 64)
	// Points is the number of evaluation points per expression,
	// rounded up to whole 64-lane blocks (default 2048).
	Points int `json:"points"`
	// Rounds is the number of timed passes per engine; the fastest
	// pass is reported, which filters scheduler noise out of the
	// short per-engine walls (default 3).
	Rounds int `json:"rounds"`
}

func (c EvalBenchConfig) withDefaults() EvalBenchConfig {
	if c.Samples <= 0 {
		c.Samples = 25
	}
	if c.Seed == 0 {
		c.Seed = 17
	}
	if c.Width == 0 {
		c.Width = 64
	}
	if c.Points <= 0 {
		c.Points = 2048
	}
	c.Points = (c.Points + 63) / 64 * 64
	if c.Rounds <= 0 {
		c.Rounds = 3
	}
	return c
}

// EvalBenchRun reports one engine's pass over the whole corpus.
type EvalBenchRun struct {
	// Engine is "tree" (the recursive eval.Eval interpreter), or the
	// bytecode program under "bytecode" (scalar), "bitsliced" (64
	// lanes per word) or "auto" (per-program cost-model choice).
	Engine      string  `json:"engine"`
	WallMS      float64 `json:"wall_ms"`
	Evals       int     `json:"evals"`
	EvalsPerSec float64 `json:"evals_per_sec"`
}

// EvalBenchReport is the full result, serialized to BENCH_eval.json by
// scripts/bench.sh.
type EvalBenchReport struct {
	Config EvalBenchConfig `json:"config"`
	// Exprs is the corpus size; CompileMS is the one-off cost of
	// compiling the whole corpus to bytecode (shared by the three
	// bytecode engines, excluded from their timed passes).
	Exprs     int            `json:"exprs"`
	CompileMS float64        `json:"compile_ms"`
	Runs      []EvalBenchRun `json:"runs"`
	// Speedup is tree wall time over engine wall time, per bytecode
	// engine. The acceptance floor for this PR is auto >= 20x on the
	// width-64 corpus.
	Speedup map[string]float64 `json:"speedup"`
	// Mismatches counts evaluation points where any bytecode engine
	// disagreed with the tree interpreter; anything but zero is a bug
	// (the differential fuzz in internal/eval/bitslice pins this).
	Mismatches int `json:"mismatches"`
}

// evalBenchCase is one corpus expression with its compiled program and
// pre-drawn input blocks (the same inputs drive every engine).
type evalBenchCase struct {
	e      *expr.Expr
	prog   *bitslice.Prog
	vars   []string
	inputs []map[string]*[64]uint64 // per block, per variable
	envs   [][]eval.Env             // per block, per lane — tree interpreter form
	want   [][]uint64               // per block, tree-interpreter outputs (the oracle)
}

// RunEvalBench measures the evaluation engines over a fresh corpus.
// The tree interpreter runs first and its outputs become the oracle
// every bytecode engine is checked against, point by point.
func RunEvalBench(cfg EvalBenchConfig) EvalBenchReport {
	cfg = cfg.withDefaults()
	report := EvalBenchReport{Config: cfg, Speedup: map[string]float64{}}

	g := gen.New(gen.Config{Seed: cfg.Seed, Width: cfg.Width})
	var cases []*evalBenchCase
	for i := 0; i < cfg.Samples; i++ {
		for _, s := range []gen.Sample{g.Linear(), g.Poly(), g.NonPoly()} {
			cases = append(cases, &evalBenchCase{e: s.Obfuscated})
		}
	}
	report.Exprs = len(cases)

	compileStart := time.Now()
	for _, c := range cases {
		p, err := bitslice.Compile(c.e, cfg.Width)
		if err != nil {
			// The generator only emits the operator set the compiler
			// covers; a failure here is a bug, surfaced as mismatches.
			report.Mismatches += cfg.Points
			continue
		}
		c.prog = p
		c.vars = p.Vars
	}
	report.CompileMS = durMSf(time.Since(compileStart))

	// Pre-draw every input so engine passes time evaluation alone.
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	mask := eval.Mask(cfg.Width)
	blocks := cfg.Points / 64
	for _, c := range cases {
		if c.prog == nil {
			continue
		}
		c.inputs = make([]map[string]*[64]uint64, blocks)
		c.envs = make([][]eval.Env, blocks)
		for b := 0; b < blocks; b++ {
			c.inputs[b] = map[string]*[64]uint64{}
			for _, v := range c.vars {
				var lanes [64]uint64
				for l := range lanes {
					lanes[l] = rng.Uint64() & mask
				}
				c.inputs[b][v] = &lanes
			}
			envs := make([]eval.Env, 64)
			for l := 0; l < 64; l++ {
				env := eval.Env{}
				for _, v := range c.vars {
					env[v] = c.inputs[b][v][l]
				}
				envs[l] = env
			}
			c.envs[b] = envs
		}
	}

	evals := 0
	for _, c := range cases {
		if c.prog != nil {
			evals += cfg.Points
		}
	}

	// Tree interpreter: the baseline and the oracle. Outputs are kept
	// from the first round; later rounds only contribute timing.
	var treeWall time.Duration
	for round := 0; round < cfg.Rounds; round++ {
		start := time.Now()
		for _, c := range cases {
			if c.prog == nil {
				continue
			}
			keep := c.want == nil
			if keep {
				c.want = make([][]uint64, blocks)
			}
			for b := range c.envs {
				outs := make([]uint64, 64)
				for l, env := range c.envs[b] {
					outs[l] = eval.Eval(c.e, env, cfg.Width)
				}
				if keep {
					c.want[b] = outs
				}
			}
		}
		if wall := time.Since(start); round == 0 || wall < treeWall {
			treeWall = wall
		}
	}
	report.Runs = append(report.Runs, EvalBenchRun{
		Engine: "tree", WallMS: durMSf(treeWall), Evals: evals,
		EvalsPerSec: perSec(evals, treeWall),
	})

	for _, eng := range []struct {
		name string
		mode bitslice.Engine
	}{
		{"bytecode", bitslice.EngineScalar},
		{"bitsliced", bitslice.EngineSliced},
		{"auto", bitslice.EngineAuto},
	} {
		// Fresh blocks per pass so the bitsliced engine's lazy plane
		// transposes are spent inside its own timed region.
		wall, mismatches := runEvalEngine(cases, cfg, eng.mode)
		report.Mismatches += mismatches
		report.Runs = append(report.Runs, EvalBenchRun{
			Engine: eng.name, WallMS: durMSf(wall), Evals: evals,
			EvalsPerSec: perSec(evals, wall),
		})
		if wall > 0 {
			report.Speedup[eng.name] = treeWall.Seconds() / wall.Seconds()
		}
	}
	return report
}

func runEvalEngine(cases []*evalBenchCase, cfg EvalBenchConfig, mode bitslice.Engine) (time.Duration, int) {
	blocks := cfg.Points / 64
	type bound struct {
		ev  *bitslice.Evaluator
		blk []*bitslice.Block
	}
	var best time.Duration
	mismatches := 0
	for round := 0; round < cfg.Rounds; round++ {
		// Blocks are rebuilt every round (untimed) so the bitsliced
		// engine's lazy plane transposes are spent inside each timed
		// pass, not cached from the previous one.
		prep := make([]bound, len(cases))
		for i, c := range cases {
			if c.prog == nil {
				continue
			}
			blks := make([]*bitslice.Block, blocks)
			for b := 0; b < blocks; b++ {
				blk := bitslice.NewBlock(cfg.Width, 64)
				for _, v := range c.vars {
					for l := 0; l < 64; l++ {
						blk.Set(v, l, c.inputs[b][v][l])
					}
				}
				blks[b] = blk
			}
			prep[i] = bound{ev: bitslice.NewEvaluatorEngine(c.prog, mode), blk: blks}
		}

		out := make([]uint64, 0, 64)
		start := time.Now()
		for i, c := range cases {
			if c.prog == nil {
				continue
			}
			for b, blk := range prep[i].blk {
				out = prep[i].ev.EvalBlock(blk, out[:0])
				if round > 0 {
					continue
				}
				for l, got := range out {
					if got != c.want[b][l] {
						mismatches++
					}
				}
			}
		}
		if wall := time.Since(start); round == 0 || wall < best {
			best = wall
		}
	}
	return best, mismatches
}

func perSec(n int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(n) / d.Seconds()
}

// WriteEvalBenchJSON serializes the report as indented JSON.
func WriteEvalBenchJSON(w io.Writer, r EvalBenchReport) error { return writeJSONReport(w, r) }
