package harness

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// ASCII plot rendering for the paper's figures: the text-mode
// equivalent of Figure 3 (metric vs solving time), Figure 4 (solving
// time scatter per solver) and Figure 6 (sorted time curve after
// simplification). cmd/mbabench prints these beneath the numeric
// tables so the shape is visible at a glance.

const (
	plotWidth  = 64
	plotHeight = 12
)

// plotCanvas is a fixed-size character raster.
type plotCanvas struct {
	cells [][]byte
}

func newCanvas() *plotCanvas {
	c := &plotCanvas{cells: make([][]byte, plotHeight)}
	for i := range c.cells {
		c.cells[i] = []byte(strings.Repeat(" ", plotWidth))
	}
	return c
}

// set plots a point with 0,0 at the bottom-left.
func (c *plotCanvas) set(x, y int, ch byte) {
	if x < 0 || x >= plotWidth || y < 0 || y >= plotHeight {
		return
	}
	row := plotHeight - 1 - y
	if c.cells[row][x] == ' ' || c.cells[row][x] == ch {
		c.cells[row][x] = ch
	} else {
		c.cells[row][x] = '*' // collision of different series
	}
}

func (c *plotCanvas) render(b *strings.Builder, yLabel func(frac float64) string) {
	for i, row := range c.cells {
		frac := 1 - float64(i)/float64(plotHeight-1)
		label := yLabel(frac)
		fmt.Fprintf(b, "%10s |%s\n", label, string(row))
	}
	fmt.Fprintf(b, "%10s +%s\n", "", strings.Repeat("-", plotWidth))
}

// PlotFigure4 draws each solver's sorted solving times (timeouts
// plotted at the ceiling), one mark per query: the text rendition of
// the paper's Figure 4 scatter.
func PlotFigure4(outcomes []Outcome, solvers []string) string {
	marks := []byte{'z', 's', 'b', '1', '2', '3'}
	var maxT float64
	perSolver := map[string][]float64{}
	for _, o := range outcomes {
		v := o.Elapsed.Seconds()
		if !o.Solved() {
			v = -1 // timeout sentinel
		} else if v > maxT {
			maxT = v
		}
		perSolver[o.Solver] = append(perSolver[o.Solver], v)
	}
	if maxT == 0 {
		maxT = 1
	}
	canvas := newCanvas()
	var legend []string
	for si, name := range solvers {
		times := perSolver[name]
		sort.Float64s(times)
		mark := marks[si%len(marks)]
		legend = append(legend, fmt.Sprintf("%c=%s", mark, name))
		for i, v := range times {
			x := 0
			if len(times) > 1 {
				x = i * (plotWidth - 1) / (len(times) - 1)
			}
			y := plotHeight - 1 // timeouts at ceiling
			if v >= 0 {
				y = int(v / maxT * float64(plotHeight-2))
			}
			canvas.set(x, y, mark)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4 plot: per-query solving time, sorted per solver (ceiling = timeout; %s)\n",
		strings.Join(legend, " "))
	canvas.render(&b, func(frac float64) string {
		if frac >= 0.999 {
			return "timeout"
		}
		return fmt.Sprintf("%.2fs", frac*maxT)
	})
	b.WriteString(strings.Repeat(" ", 11) + "queries, sorted by time ->\n")
	return b.String()
}

// PlotFigure3 draws the timeout rate against MBA alternation buckets —
// the dominant-metric finding of the paper's Figure 3.
func PlotFigure3(outcomes []Outcome) string {
	type agg struct{ timeouts, total int }
	buckets := map[int]*agg{}
	maxBucket := 0
	for _, o := range outcomes {
		bk := o.Metrics.Alternation / 4 * 4
		a := buckets[bk]
		if a == nil {
			a = &agg{}
			buckets[bk] = a
		}
		a.total++
		if !o.Solved() {
			a.timeouts++
		}
		if bk > maxBucket {
			maxBucket = bk
		}
	}
	canvas := newCanvas()
	for bk, a := range buckets {
		x := 0
		if maxBucket > 0 {
			x = bk * (plotWidth - 1) / maxBucket
		}
		rate := float64(a.timeouts) / float64(a.total)
		y := int(math.Round(rate * float64(plotHeight-1)))
		canvas.set(x, y, '#')
		// Draw a thin column under the point for readability.
		for yy := 0; yy < y; yy++ {
			canvas.set(x, yy, '.')
		}
	}
	var b strings.Builder
	b.WriteString("Figure 3 plot: timeout rate vs MBA alternation (bucketed by 4)\n")
	canvas.render(&b, func(frac float64) string {
		return fmt.Sprintf("%3.0f%%", frac*100)
	})
	fmt.Fprintf(&b, "%salternation 0..%d ->\n", strings.Repeat(" ", 11), maxBucket)
	return b.String()
}

// PlotFigure6 draws the sorted z3sim solving-time curve after
// simplification.
func PlotFigure6(outcomes []Outcome) string {
	var times []float64
	timeouts := 0
	for _, o := range outcomes {
		if o.Solver != "z3sim" {
			continue
		}
		if o.Solved() {
			times = append(times, o.Elapsed.Seconds())
		} else {
			timeouts++
		}
	}
	sort.Float64s(times)
	maxT := 0.000001
	if n := len(times); n > 0 && times[n-1] > maxT {
		maxT = times[n-1]
	}
	canvas := newCanvas()
	for i, v := range times {
		x := 0
		if len(times) > 1 {
			x = i * (plotWidth - 1) / (len(times) - 1)
		}
		canvas.set(x, int(v/maxT*float64(plotHeight-1)), '+')
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6 plot: z3sim solving time after MBA-Solver simplification (%d solved, %d timeouts)\n",
		len(times), timeouts)
	canvas.render(&b, func(frac float64) string {
		return shortDuration(time.Duration(frac * maxT * float64(time.Second)))
	})
	b.WriteString(strings.Repeat(" ", 11) + "queries, sorted by time ->\n")
	return b.String()
}

func shortDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%dms", d.Milliseconds())
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}
