// Package mbasolver is a Go implementation of MBA-Solver (Xu et al.,
// PLDI 2021): a semantics-preserving simplifier for Mixed
// Bitwise-Arithmetic (MBA) expressions that boosts SMT solver
// performance on MBA equations, together with the full experimental
// stack of the paper — bitvector SMT solvers built on an in-tree CDCL
// SAT engine, an MBA corpus generator, peer-tool baselines and an
// experiment harness.
//
// The package is the stable public API; the machinery lives under
// internal/. Quick start:
//
//	e := mbasolver.MustParse("2*(x|y) - (~x&y) - (x&~y)")
//	simplified := mbasolver.Simplify(e) // x+y
//	verdict := mbasolver.CheckEquivalence(e, simplified, 8)
package mbasolver

import (
	"math/rand"
	"time"

	"mbasolver/internal/bv"
	"mbasolver/internal/core"
	"mbasolver/internal/eval"
	"mbasolver/internal/expr"
	"mbasolver/internal/metrics"
	"mbasolver/internal/parser"
	"mbasolver/internal/smt"
)

// Expression is an immutable MBA expression over n-bit integers.
type Expression struct {
	e *expr.Expr
}

// Parse parses the C-syntax textual form (operators ~ & | ^ + - *,
// decimal or 0x hex constants, C precedence).
func Parse(src string) (Expression, error) {
	e, err := parser.Parse(src)
	if err != nil {
		return Expression{}, err
	}
	return Expression{e}, nil
}

// MustParse is Parse but panics on error.
func MustParse(src string) Expression {
	return Expression{parser.MustParse(src)}
}

// String renders the expression with minimal parentheses.
func (x Expression) String() string { return x.e.String() }

// IsZero reports whether the expression is the literal constant 0.
func (x Expression) IsZero() bool { return x.e != nil && x.e.IsConst(0) }

// Vars returns the sorted variable names.
func (x Expression) Vars() []string { return expr.Vars(x.e) }

// Eval evaluates the expression at the given bit width (1..64); the
// env maps variable names to values, unbound variables read as 0.
func (x Expression) Eval(env map[string]uint64, width uint) uint64 {
	return eval.Eval(x.e, eval.Env(env), width)
}

// Equal reports structural equality.
func (x Expression) Equal(y Expression) bool { return expr.Equal(x.e, y.e) }

// Metrics reports the paper's complexity metrics for the expression.
type Metrics struct {
	// Kind is "linear", "poly" or "nonpoly" (paper Definitions 1–2).
	Kind string
	// NumVars is the number of distinct variables.
	NumVars int
	// Alternation counts operators connecting the bitwise and
	// arithmetic domains — the paper's dominant hardness metric.
	Alternation int
	// Length is the textual length of the canonical rendering.
	Length int
	// NumTerms counts top-level additive terms.
	NumTerms int
	// MaxCoeff is the largest constant magnitude.
	MaxCoeff uint64
}

// Metrics computes the complexity metrics of the expression.
func (x Expression) Metrics() Metrics {
	m := metrics.Measure(x.e)
	return Metrics{
		Kind:        m.Kind.String(),
		NumVars:     m.NumVars,
		Alternation: m.Alternation,
		Length:      m.Length,
		NumTerms:    m.NumTerms,
		MaxCoeff:    m.MaxCoeff,
	}
}

// Options configures a Simplifier; the zero value gives the defaults
// (width 64, conjunction basis, all optimizations on).
type Options struct {
	// Width is the ring width (1..64); simplification at width n is
	// sound for all widths <= n. Default 64.
	Width uint
	// UseDisjunctionBasis switches normalization to the paper's
	// Table 9 alternative basis {x, y, x|y, -1}.
	UseDisjunctionBasis bool
	// DisableFinalOptimization, DisableCSE and DisableLookupTable turn
	// off the respective §4.5 optimizations (for ablations).
	DisableFinalOptimization bool
	DisableCSE               bool
	DisableLookupTable       bool
}

// Simplifier is a reusable MBA-Solver instance; reuse amortizes the
// signature look-up table. Not safe for concurrent use.
type Simplifier struct {
	s *core.Simplifier
}

// NewSimplifier returns a Simplifier with the given options.
func NewSimplifier(opts Options) *Simplifier {
	basis := core.BasisConjunction
	if opts.UseDisjunctionBasis {
		basis = core.BasisDisjunction
	}
	return &Simplifier{core.New(core.Options{
		Width:           opts.Width,
		Basis:           basis,
		DisableFinalOpt: opts.DisableFinalOptimization,
		DisableCSE:      opts.DisableCSE,
		DisableTable:    opts.DisableLookupTable,
	})}
}

// Simplify returns an equivalent expression with reduced MBA
// alternation.
func (s *Simplifier) Simplify(x Expression) Expression {
	return Expression{s.s.Simplify(x.e)}
}

// Simplify runs MBA-Solver with default options on one expression.
func Simplify(x Expression) Expression {
	return NewSimplifier(Options{}).Simplify(x)
}

// Verdict is the outcome of an equivalence check.
type Verdict struct {
	// Equivalent is true when the expressions were proven equal for
	// all inputs at the checked width.
	Equivalent bool
	// Timeout is true when the solver exhausted its budget; in that
	// case Equivalent is meaningless.
	Timeout bool
	// Witness is a distinguishing assignment when not equivalent.
	Witness map[string]uint64
	// Elapsed is the solving time.
	Elapsed time.Duration
}

// CheckEquivalence decides a == b at the given width with the
// btorsim solver personality and a generous default budget, after
// running both sides through MBA-Solver (the paper's recommended
// pipeline). Use CheckEquivalenceRaw to skip simplification.
func CheckEquivalence(a, b Expression, width uint) Verdict {
	s := NewSimplifier(Options{})
	return CheckEquivalenceRaw(s.Simplify(a), s.Simplify(b), width)
}

// CheckEquivalenceRaw decides a == b without pre-simplification.
func CheckEquivalenceRaw(a, b Expression, width uint) Verdict {
	res := smt.NewBoolectorSim().CheckEquiv(a.e, b.e, width, smt.Budget{
		Timeout:   30 * time.Second,
		Conflicts: 2_000_000,
	})
	return Verdict{
		Equivalent: res.Status == smt.Equivalent,
		Timeout:    res.Status == smt.Timeout,
		Witness:    res.Witness,
		Elapsed:    res.Elapsed,
	}
}

// ProbablyEqual tests a == b on random inputs (fast, no proof): it
// returns false with a witness when a counterexample is found.
func ProbablyEqual(a, b Expression, width uint, rounds int) (bool, map[string]uint64) {
	rng := rand.New(rand.NewSource(1))
	ok, env := eval.ProbablyEqual(rng, a.e, b.e, width, rounds)
	return ok, map[string]uint64(env)
}

// ToBitvector lowers an expression to the internal bitvector term IR
// at the given width, for integration with the smtlib writer and the
// solver personalities. The returned term shares no state with the
// expression. The second result is false only for nil expressions.
func ToBitvector(x Expression, width uint) (*bv.Term, bool) {
	if x.e == nil {
		return nil, false
	}
	return bv.FromExpr(x.e, width), true
}

// RenameVars returns a copy of the expression with every variable name
// prefixed (used to namespace independent proof obligations in one
// SMT-LIB script).
func (x Expression) RenameVars(prefix string) Expression {
	env := map[string]*expr.Expr{}
	for _, v := range expr.Vars(x.e) {
		env[v] = expr.Var(prefix + v)
	}
	return Expression{expr.SubstituteVars(x.e, env)}
}
