// Command mbalint runs the project's static-analysis suite
// (internal/analysis) over the module: budgetloop, atomicmix,
// lockdiscipline, exprimmut and errwrap.
//
// Usage:
//
//	mbalint [flags] [packages]
//
//	mbalint ./...                  # analyze the whole module
//	mbalint -json ./...            # machine-readable diagnostics
//	mbalint -fix ./...             # apply errwrap %v→%w rewrites
//	mbalint -budgetloop=false ./...# disable one analyzer
//	mbalint -dir testdata/src/x -pkg example.com/x   # fixture mode
//
// Exit status: 0 when the tree is clean, 1 when there are findings,
// 2 when analysis could not run. Diagnostics are sorted by
// file:line:col and can be suppressed in source with
// `//lint:ignore <analyzer> <reason>`.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"mbasolver/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mbalint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as JSON (service wire style)")
	applyFix := fs.Bool("fix", false, "apply suggested fixes (errwrap %v→%w) in place")
	fixtureDir := fs.String("dir", "", "analyze a loose directory of Go files instead of packages")
	fixturePkg := fs.String("pkg", "", "with -dir: import path the directory poses as")

	analyzers := analysis.Analyzers()
	enableFlags := map[string]*bool{}
	for _, a := range analyzers {
		enableFlags[a.Name] = fs.Bool(a.Name, true, "run the "+a.Name+" analyzer ("+a.Doc+")")
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	enabled := map[string]bool{}
	for name, on := range enableFlags {
		enabled[name] = *on
	}

	load := func() (*analysis.Program, error) {
		if *fixtureDir != "" {
			pkgPath := *fixturePkg
			if pkgPath == "" {
				pkgPath = "mbalint/fixture"
			}
			return analysis.LoadDir(*fixtureDir, pkgPath)
		}
		patterns := fs.Args()
		if len(patterns) == 0 {
			patterns = []string{"./..."}
		}
		return analysis.Load(".", patterns)
	}

	prog, err := load()
	if err != nil {
		fmt.Fprintln(stderr, "mbalint:", err)
		return 2
	}
	diags, edits := analysis.Run(prog, analyzers, enabled)

	if *applyFix && len(edits) > 0 {
		changed, err := analysis.ApplyEdits(edits)
		if err != nil {
			fmt.Fprintln(stderr, "mbalint: applying fixes:", err)
			return 2
		}
		for _, f := range changed {
			fmt.Fprintln(stderr, "mbalint: fixed", f)
		}
		// Re-analyze the patched tree so the report reflects what is
		// actually left.
		prog, err = load()
		if err != nil {
			fmt.Fprintln(stderr, "mbalint:", err)
			return 2
		}
		diags, _ = analysis.Run(prog, analyzers, enabled)
	}

	if *jsonOut {
		out := struct {
			Diagnostics []analysis.Diagnostic `json:"diagnostics"`
			Count       int                   `json:"count"`
		}{Diagnostics: diags, Count: len(diags)}
		if out.Diagnostics == nil {
			out.Diagnostics = []analysis.Diagnostic{}
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(stderr, "mbalint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d.String())
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
