// Command mbalint runs the project's static-analysis suite
// (internal/analysis) over the module: budgetloop, atomicmix,
// lockdiscipline, exprimmut, errwrap, recoverguard, goroutinelife,
// ctxflow and reasoncheck.
//
// Usage:
//
//	mbalint [flags] [packages]
//
//	mbalint ./...                  # analyze the whole module
//	mbalint -json ./...            # machine-readable diagnostics
//	mbalint -fix ./...             # apply errwrap %v→%w rewrites
//	mbalint -timing ./...          # per-analyzer wall clock to stderr
//	mbalint -budgetloop=false ./...# disable one analyzer
//	mbalint -dir testdata/src/x -pkg example.com/x   # fixture mode
//
// Exit status: 0 when the tree is clean, 1 when there are findings,
// 2 when analysis could not run. Diagnostics are sorted by
// file:line:col and can be suppressed in source with
// `//lint:ignore <analyzer> <reason>`; genuine daemons that may root
// fresh contexts carry `//lint:daemon <reason>` on their declaration.
// Directives that suppress nothing are findings themselves.
//
// The JSON report carries the diagnostics plus the enabled analyzer
// names and (with -timing) per-analyzer wall-clock times:
//
//	{"diagnostics": [...], "count": N,
//	 "analyzers": ["atomicmix", ...],
//	 "timings": [{"analyzer": "atomicmix", "ms": 1.2}, ...]}
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"mbasolver/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mbalint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as JSON (service wire style)")
	applyFix := fs.Bool("fix", false, "apply suggested fixes (errwrap %v→%w) in place")
	timing := fs.Bool("timing", false, "report per-analyzer wall-clock times")
	fixtureDir := fs.String("dir", "", "analyze a loose directory of Go files instead of packages")
	fixturePkg := fs.String("pkg", "", "with -dir: import path the directory poses as")

	analyzers := analysis.Analyzers()
	enableFlags := map[string]*bool{}
	for _, a := range analyzers {
		enableFlags[a.Name] = fs.Bool(a.Name, true, "run the "+a.Name+" analyzer ("+a.Doc+")")
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	enabled := map[string]bool{}
	var enabledNames []string
	for name, on := range enableFlags {
		enabled[name] = *on
		if *on {
			enabledNames = append(enabledNames, name)
		}
	}
	sort.Strings(enabledNames)

	load := func() (*analysis.Program, error) {
		if *fixtureDir != "" {
			pkgPath := *fixturePkg
			if pkgPath == "" {
				pkgPath = "mbalint/fixture"
			}
			return analysis.LoadDir(*fixtureDir, pkgPath)
		}
		patterns := fs.Args()
		if len(patterns) == 0 {
			patterns = []string{"./..."}
		}
		return analysis.Load(".", patterns)
	}

	prog, err := load()
	if err != nil {
		fmt.Fprintln(stderr, "mbalint:", err)
		return 2
	}
	diags, edits, times := analysis.RunTimed(prog, analyzers, enabled)

	if *applyFix && len(edits) > 0 {
		changed, err := analysis.ApplyEdits(edits)
		if err != nil {
			fmt.Fprintln(stderr, "mbalint: applying fixes:", err)
			return 2
		}
		for _, f := range changed {
			fmt.Fprintln(stderr, "mbalint: fixed", f)
		}
		// Re-analyze the patched tree so the report reflects what is
		// actually left.
		prog, err = load()
		if err != nil {
			fmt.Fprintln(stderr, "mbalint:", err)
			return 2
		}
		diags, _, times = analysis.RunTimed(prog, analyzers, enabled)
	}

	if *timing && !*jsonOut {
		for _, tm := range times {
			fmt.Fprintf(stderr, "mbalint: %-16s %8.2fms\n", tm.Analyzer, tm.Millis)
		}
	}

	if *jsonOut {
		out := struct {
			Diagnostics []analysis.Diagnostic     `json:"diagnostics"`
			Count       int                       `json:"count"`
			Analyzers   []string                  `json:"analyzers"`
			Timings     []analysis.AnalyzerTiming `json:"timings,omitempty"`
		}{Diagnostics: diags, Count: len(diags), Analyzers: enabledNames}
		if out.Diagnostics == nil {
			out.Diagnostics = []analysis.Diagnostic{}
		}
		if *timing {
			out.Timings = times
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(stderr, "mbalint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d.String())
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
