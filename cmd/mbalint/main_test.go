package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

const fixtureRoot = "../../internal/analysis/testdata/src"

// diagLine is the plain-output shape: file:line:col: analyzer: message.
var diagLine = regexp.MustCompile(`^[^:]+:\d+:\d+: [a-z]+: .+$`)

// TestFixtureExitCodes: each analyzer fixture makes mbalint exit 1
// with well-formed diagnostics; the clean fixture exits 0 silently.
func TestFixtureExitCodes(t *testing.T) {
	cases := []struct {
		dir  string
		pkg  string
		exit int
	}{
		{"budgetloop", "mbasolver/internal/sat", 1},
		{"atomicmix", "example.com/atomicmix", 1},
		{"lockdiscipline", "example.com/lockfix", 1},
		{"exprimmut", "example.com/immut", 1},
		{"errwrap", "example.com/wrapfix", 1},
		{"recoverguard", "example.com/recoverguard", 1},
		{"goroutinelife", "mbasolver/internal/gorolife", 1},
		{"ctxflow", "mbasolver/internal/service/ctxfix", 1},
		{"reasoncheck", "mbasolver/internal/smtreason", 1},
		{"storeput", "mbasolver/internal/storeput", 1},
		{"clean", "example.com/clean", 0},
	}
	for _, tc := range cases {
		t.Run(tc.dir, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := run([]string{"-dir", filepath.Join(fixtureRoot, tc.dir), "-pkg", tc.pkg}, &stdout, &stderr)
			if code != tc.exit {
				t.Fatalf("exit = %d, want %d\nstdout:\n%s\nstderr:\n%s", code, tc.exit, stdout.String(), stderr.String())
			}
			lines := strings.Split(strings.TrimRight(stdout.String(), "\n"), "\n")
			if tc.exit == 0 {
				if stdout.String() != "" {
					t.Fatalf("clean fixture printed diagnostics:\n%s", stdout.String())
				}
				return
			}
			for _, line := range lines {
				if !diagLine.MatchString(line) {
					t.Errorf("malformed diagnostic line %q", line)
				}
			}
		})
	}
}

// TestJSONOutput: -json emits the service wire style — a diagnostics
// array plus a count — with every field populated.
func TestJSONOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-json", "-dir", filepath.Join(fixtureRoot, "errwrap"), "-pkg", "example.com/wrapfix"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr:\n%s", code, stderr.String())
	}
	var out struct {
		Diagnostics []struct {
			Analyzer string `json:"analyzer"`
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Message  string `json:"message"`
		} `json:"diagnostics"`
		Count int `json:"count"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &out); err != nil {
		t.Fatalf("decoding -json output: %v\n%s", err, stdout.String())
	}
	if out.Count != len(out.Diagnostics) || out.Count == 0 {
		t.Fatalf("count = %d, diagnostics = %d", out.Count, len(out.Diagnostics))
	}
	for _, d := range out.Diagnostics {
		if d.Analyzer != "errwrap" || d.File == "" || d.Line == 0 || d.Col == 0 || d.Message == "" {
			t.Errorf("incomplete diagnostic: %+v", d)
		}
	}
}

// TestJSONSchema: the report names the enabled analyzers, drops
// disabled ones, and carries per-analyzer timings when -timing is on.
func TestJSONSchema(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-json", "-timing", "-errwrap=false", "-dir", filepath.Join(fixtureRoot, "clean"), "-pkg", "example.com/clean"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstderr:\n%s", code, stderr.String())
	}
	var out struct {
		Analyzers []string `json:"analyzers"`
		Timings   []struct {
			Analyzer string  `json:"analyzer"`
			Millis   float64 `json:"ms"`
		} `json:"timings"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &out); err != nil {
		t.Fatalf("decoding -json output: %v\n%s", err, stdout.String())
	}
	if len(out.Analyzers) == 0 {
		t.Fatal("report names no analyzers")
	}
	for _, name := range out.Analyzers {
		if name == "errwrap" {
			t.Error("disabled analyzer listed as enabled")
		}
	}
	for _, want := range []string{"goroutinelife", "ctxflow", "reasoncheck"} {
		found := false
		for _, name := range out.Analyzers {
			found = found || name == want
		}
		if !found {
			t.Errorf("analyzer %q missing from the enabled list %v", want, out.Analyzers)
		}
	}
	if len(out.Timings) != len(out.Analyzers) {
		t.Fatalf("%d timings for %d enabled analyzers", len(out.Timings), len(out.Analyzers))
	}
	for _, tm := range out.Timings {
		if tm.Analyzer == "" || tm.Millis < 0 {
			t.Errorf("malformed timing entry: %+v", tm)
		}
	}
}

// TestTimingFlag: in text mode -timing reports per-analyzer wall
// clock on stderr without polluting stdout.
func TestTimingFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-timing", "-dir", filepath.Join(fixtureRoot, "clean"), "-pkg", "example.com/clean"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstderr:\n%s", code, stderr.String())
	}
	if stdout.String() != "" {
		t.Fatalf("-timing wrote to stdout:\n%s", stdout.String())
	}
	for _, want := range []string{"budgetloop", "reasoncheck", "ms"} {
		if !strings.Contains(stderr.String(), want) {
			t.Errorf("timing report missing %q:\n%s", want, stderr.String())
		}
	}
}

// TestJSONClean: a clean tree still emits valid JSON with an empty
// (not null) diagnostics array.
func TestJSONClean(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-json", "-dir", filepath.Join(fixtureRoot, "clean"), "-pkg", "example.com/clean"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), `"diagnostics": []`) {
		t.Fatalf("empty run must emit an empty array, got:\n%s", stdout.String())
	}
}

// TestAnalyzerDisableFlag: -errwrap=false silences the errwrap
// fixture entirely.
func TestAnalyzerDisableFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-errwrap=false", "-dir", filepath.Join(fixtureRoot, "errwrap"), "-pkg", "example.com/wrapfix"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s", code, stdout.String())
	}
}

// TestFixMode: -fix rewrites %v to %w in place and the re-analysis of
// the patched tree comes back clean.
func TestFixMode(t *testing.T) {
	src, err := os.ReadFile(filepath.Join(fixtureRoot, "errwrap", "errwrap.go"))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "errwrap.go"), src, 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"-fix", "-dir", dir, "-pkg", "example.com/wrapfix"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d, want 0 after fixes\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stderr.String(), "mbalint: fixed") {
		t.Fatalf("expected a fixed-file notice on stderr, got:\n%s", stderr.String())
	}
	fixed, err := os.ReadFile(filepath.Join(dir, "errwrap.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(fixed), `"solve: %w"`) {
		t.Error("wrapV was not rewritten to %w")
	}
	if !strings.Contains(string(fixed), `"rendered: %v"`) {
		t.Error("suppressed call was rewritten; suppression must block fixes")
	}

	// Idempotency: a second -fix run finds nothing left to rewrite, so
	// it must not touch the file — zero diffs, no fixed-file notice.
	info, err := os.Stat(filepath.Join(dir, "errwrap.go"))
	if err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	stderr.Reset()
	code = run([]string{"-fix", "-dir", dir, "-pkg", "example.com/wrapfix"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("second -fix run exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if strings.Contains(stderr.String(), "mbalint: fixed") {
		t.Fatalf("second -fix run rewrote files:\n%s", stderr.String())
	}
	again, err := os.ReadFile(filepath.Join(dir, "errwrap.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, fixed) {
		t.Error("second -fix run changed the file content")
	}
	info2, err := os.Stat(filepath.Join(dir, "errwrap.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !info2.ModTime().Equal(info.ModTime()) {
		t.Error("second -fix run rewrote the file in place (mtime changed)")
	}
}

// TestModuleClean is the acceptance check in test form: the final
// tree must be clean under the full suite.
func TestModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks the whole module")
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"mbasolver/..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("mbalint mbasolver/... = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
}
