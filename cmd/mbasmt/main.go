// Command mbasmt is a command-line SMT solver for the QF_BV subset of
// SMT-LIB v2 that MBA equations use, driven by one of the in-tree
// solver personalities.
//
// Usage:
//
//	mbasmt [-solver z3sim|stpsim|btorsim] [-conflicts N] [-timeout SECONDS]
//	       [-simplify] [file.smt2]
//
// Reads the script from the file (or stdin), prints sat/unsat/unknown,
// and a model when the script asked for one. With -simplify, asserted
// disequalities between bitvector terms are first run through
// MBA-Solver — the paper's preprocessing pipeline as a solver flag.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"mbasolver/internal/bv"
	"mbasolver/internal/smt"
	"mbasolver/internal/smtlib"
)

func main() {
	solverName := flag.String("solver", "btorsim", "personality: z3sim, stpsim or btorsim")
	conflicts := flag.Int64("conflicts", 0, "CDCL conflict budget (0 = unlimited)")
	timeout := flag.Float64("timeout", 0, "wall-clock budget in seconds (0 = unlimited)")
	simplify := flag.Bool("simplify", false, "run MBA-Solver preprocessing on asserted (dis)equalities")
	flag.Parse()

	var solver *smt.Solver
	switch *solverName {
	case "z3sim":
		solver = smt.NewZ3Sim()
	case "stpsim":
		solver = smt.NewSTPSim()
	case "btorsim":
		solver = smt.NewBoolectorSim()
	default:
		fatal(fmt.Errorf("unknown solver %q", *solverName))
	}

	var src []byte
	var err error
	if flag.NArg() > 0 {
		src, err = os.ReadFile(flag.Arg(0))
	} else {
		src, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		fatal(err)
	}

	script, err := smtlib.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	assertions := script.Assertions
	if *simplify {
		assertions = preprocess(assertions)
	}

	res := solver.SolveAssertions(assertions, smt.Budget{
		Conflicts: *conflicts,
		Timeout:   time.Duration(*timeout * float64(time.Second)),
	})
	fmt.Println(res.Status)
	if res.Status == smt.Satisfiable && script.ProduceModels {
		fmt.Println("(model")
		names := make([]string, 0, len(res.Model))
		for n := range res.Model {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Printf("  (define-fun %s () (_ BitVec %d) (_ bv%d %d))\n",
				n, script.Decls[n], res.Model[n], script.Decls[n])
		}
		fmt.Println(")")
	}
	if res.Status == smt.SatUnknown {
		os.Exit(2)
	}
}

// preprocess applies the paper's MBA-Solver pass to each asserted
// equality or disequality whose sides convert back to MBA expressions.
func preprocess(assertions []*bv.Term) []*bv.Term {
	out := make([]*bv.Term, len(assertions))
	for i, a := range assertions {
		out[i] = smt.SimplifyPredicate(a)
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mbasmt:", err)
	os.Exit(1)
}
