// Command mbasmt is a command-line SMT solver for the QF_BV subset of
// SMT-LIB v2 that MBA equations use, driven by one of the in-tree
// solver personalities.
//
// Usage:
//
//	mbasmt [-solver z3sim|stpsim|btorsim] [-portfolio] [-conflicts N]
//	       [-timeout SECONDS] [-simplify] [-json] [file.smt2]
//
// Reads the script from the file (or stdin), prints sat/unsat/unknown,
// and a model when the script asked for one. With -simplify, asserted
// disequalities between bitvector terms are first run through
// MBA-Solver — the paper's preprocessing pipeline as a solver flag.
// With -portfolio, all three personalities race on the query and the
// first definitive verdict wins (losers are cancelled); the winning
// engine is reported on stderr. With -json the result is emitted as a
// single JSON object using the shared mbaserved response schema
// (status, model, solver, per-engine stats) instead of the SMT-LIB
// text forms.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"mbasolver/internal/bv"
	"mbasolver/internal/portfolio"
	"mbasolver/internal/service"
	"mbasolver/internal/smt"
	"mbasolver/internal/smtlib"
)

func main() {
	solverName := flag.String("solver", "btorsim", "personality: z3sim, stpsim or btorsim")
	usePortfolio := flag.Bool("portfolio", false, "race all personalities, first definitive verdict wins")
	conflicts := flag.Int64("conflicts", 0, "CDCL conflict budget (0 = unlimited)")
	timeout := flag.Float64("timeout", 0, "wall-clock budget in seconds (0 = unlimited)")
	simplify := flag.Bool("simplify", false, "run MBA-Solver preprocessing on asserted (dis)equalities")
	jsonOut := flag.Bool("json", false, "emit the result as JSON (mbaserved response schema)")
	flag.Parse()

	var solver *smt.Solver
	switch *solverName {
	case "z3sim":
		solver = smt.NewZ3Sim()
	case "stpsim":
		solver = smt.NewSTPSim()
	case "btorsim":
		solver = smt.NewBoolectorSim()
	default:
		fatal(fmt.Errorf("unknown solver %q", *solverName))
	}

	var src []byte
	var err error
	if flag.NArg() > 0 {
		src, err = os.ReadFile(flag.Arg(0))
	} else {
		src, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		fatal(err)
	}

	script, err := smtlib.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	assertions := script.Assertions
	if *simplify {
		assertions = preprocess(assertions)
	}

	budget := smt.Budget{
		Conflicts: *conflicts,
		Timeout:   time.Duration(*timeout * float64(time.Second)),
	}
	var res smt.SatResult
	var engines []service.EngineStats
	answeredBy := *solverName
	if *usePortfolio {
		pres := portfolio.SolveAssertions(smt.All(), assertions, budget)
		res = pres.SatResult
		engines = service.EnginesOf(pres.Engines)
		answeredBy = pres.Winner
		if pres.Winner != "" {
			fmt.Fprintf(os.Stderr, "; portfolio winner: %s (%v", pres.Winner, res.Elapsed)
			for _, e := range pres.Engines {
				fmt.Fprintf(os.Stderr, "; %s=%s/%dc", e.Solver, e.Verdict, e.Conflicts)
			}
			fmt.Fprintln(os.Stderr, ")")
		}
	} else {
		res = solver.SolveAssertions(assertions, budget)
	}
	if *jsonOut {
		out := service.SatResponseOf(res, answeredBy)
		out.Engines = engines
		enc := json.NewEncoder(os.Stdout)
		enc.SetEscapeHTML(false)
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
		if res.Status == smt.SatUnknown {
			os.Exit(2)
		}
		return
	}
	fmt.Println(res.Status)
	if res.Status == smt.Satisfiable && script.ProduceModels {
		fmt.Println("(model")
		names := make([]string, 0, len(res.Model))
		for n := range res.Model {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Printf("  (define-fun %s () (_ BitVec %d) (_ bv%d %d))\n",
				n, script.Decls[n], res.Model[n], script.Decls[n])
		}
		fmt.Println(")")
	}
	if res.Status == smt.SatUnknown {
		os.Exit(2)
	}
}

// preprocess applies the paper's MBA-Solver pass to each asserted
// equality or disequality whose sides convert back to MBA expressions.
func preprocess(assertions []*bv.Term) []*bv.Term {
	out := make([]*bv.Term, len(assertions))
	for i, a := range assertions {
		out[i] = smt.SimplifyPredicate(a)
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mbasmt:", err)
	os.Exit(1)
}
