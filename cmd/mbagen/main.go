// Command mbagen generates the MBA identity-equation corpus used by
// the experiments (the stand-in for the paper's 3,000-equation
// dataset) and writes it in the text corpus format.
//
// Usage:
//
//	mbagen [-n 1000] [-seed 1] [-o corpus.txt] [-check]
//
// -n is the per-category count (the total is 3n: linear, poly,
// non-poly). With -check every generated identity is validated on
// random inputs before writing.
package main

import (
	"flag"
	"fmt"
	"os"

	"mbasolver"
)

func main() {
	n := flag.Int("n", 1000, "samples per category (total 3n)")
	seed := flag.Int64("seed", 1, "generator seed")
	out := flag.String("o", "", "output file (default stdout)")
	check := flag.Bool("check", false, "validate each identity on random inputs")
	flag.Parse()

	ids := mbasolver.NewObfuscator(*seed).Corpus(*n)

	if *check {
		for i, id := range ids {
			if ok, env := mbasolver.ProbablyEqual(id.Obfuscated, id.Ground, 64, 100); !ok {
				fmt.Fprintf(os.Stderr, "mbagen: sample %d is NOT an identity at %v\n", i, env)
				os.Exit(1)
			}
		}
		fmt.Fprintf(os.Stderr, "mbagen: all %d identities validated\n", len(ids))
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mbagen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := mbasolver.SaveCorpus(w, ids); err != nil {
		fmt.Fprintln(os.Stderr, "mbagen:", err)
		os.Exit(1)
	}
}
