// Command mbatable prints the pre-computed simplification table used
// by MBA-Solver's normalization (the paper's Table 5 for two
// variables), for any variable count from 1 to 4.
//
// Usage:
//
//	mbatable [-vars "x,y"] [-width 64] [-signature "0,1,1,2"] [-basis conj|disj]
//
// Without -signature the full table (2^2^t rows) is printed; with
// -signature only the normalized expression for that vector.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"mbasolver/internal/core"
)

func main() {
	varsFlag := flag.String("vars", "x,y", "comma-separated variable names (1..4)")
	width := flag.Uint("width", 64, "ring width")
	sigFlag := flag.String("signature", "", "print only this signature vector's expression")
	basisFlag := flag.String("basis", "conj", "basis: conj (Table 4) or disj (Table 9)")
	flag.Parse()

	vars := strings.Split(*varsFlag, ",")
	for i := range vars {
		vars[i] = strings.TrimSpace(vars[i])
	}
	basis := core.BasisConjunction
	if *basisFlag == "disj" {
		basis = core.BasisDisjunction
	}

	if *sigFlag != "" {
		parts := strings.Split(*sigFlag, ",")
		sig := make([]uint64, len(parts))
		for i, p := range parts {
			v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mbatable: bad signature entry %q\n", p)
				os.Exit(2)
			}
			sig[i] = uint64(v)
		}
		if len(sig) != 1<<len(vars) {
			fmt.Fprintf(os.Stderr, "mbatable: signature needs %d entries for %d variables\n",
				1<<len(vars), len(vars))
			os.Exit(2)
		}
		fmt.Println(core.GenerateFromSignature(sig, vars, *width, basis))
		return
	}

	if len(vars) > 3 {
		fmt.Fprintln(os.Stderr, "mbatable: full tables beyond 3 variables are huge; use -signature")
		os.Exit(2)
	}
	fmt.Print(core.FormatTable(core.LookupTable(vars, *width)))
}
