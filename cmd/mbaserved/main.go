// Command mbaserved runs the MBA simplify-and-solve HTTP service.
//
// Usage:
//
//	mbaserved [-addr 127.0.0.1:8391] [-workers N] [-queue N] [-cache N]
//	          [-timeout 5s] [-max-timeout 60s] [-width 64]
//	          [-breaker-threshold N] [-breaker-cooldown 250ms]
//	          [-share] [-cubes] [-store DIR]
//	mbaserved -selfcheck [-target http://host:port] [-expect-store-recovered]
//
// In server mode it listens on -addr (port 0 picks a free port), prints
// the resolved URL on stdout and serves until SIGINT/SIGTERM, then
// shuts down gracefully: admission stops, in-flight solves are
// cancelled through their budget stop flags, and the worker pool
// drains.
//
// With -store the node persists definitive verdicts, simplifications
// and classify answers in an append-only, checksummed log under DIR
// and replays it at boot, so a restarted node answers its warm set
// from disk instead of re-solving it. Recovery never blocks startup:
// a torn or corrupt log is truncated to its intact prefix (reported on
// stdout before the listening line, and in /debug/metrics under
// "store"). A SIGKILLed node loses at most the last group-commit
// interval of writes.
//
// With -selfcheck it drives a server end-to-end — simplify (verified),
// solve (single and portfolio, cached repeats), classify, a concurrent
// burst, and a /debug/metrics scrape asserting cache hits and a quiet
// pool — and exits non-zero on any failure. Without -target it boots a
// private in-process server and additionally checks that shutdown
// returns the process to its baseline goroutine count; with -target it
// smokes a running instance (this is what scripts/ci.sh does). The
// extra -expect-store-recovered flag makes the target-mode smoke also
// require the server to report a non-empty store recovery and store
// hits — the crash-and-restart assertion in ci.sh's SIGKILL stage.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sync"
	"syscall"
	"time"

	"mbasolver/internal/service"
	"mbasolver/internal/service/client"
	"mbasolver/internal/store"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8391", "listen address (port 0 picks a free port)")
	workers := flag.Int("workers", 0, "worker pool size (0 = NumCPU)")
	queue := flag.Int("queue", 0, "admission queue depth (0 = 4x workers)")
	cacheSize := flag.Int("cache", 0, "verdict/simplification cache entries (0 = 4096, negative disables)")
	timeout := flag.Duration("timeout", 5*time.Second, "default per-request solve budget")
	maxTimeout := flag.Duration("max-timeout", 60*time.Second, "hard cap on requested budgets")
	width := flag.Uint("width", 64, "default ring width when requests omit one")
	breakerThreshold := flag.Int("breaker-threshold", 0, "consecutive panic/resource failures opening a personality's circuit breaker (0 = 3, negative disables breakers)")
	breakerCooldown := flag.Duration("breaker-cooldown", 0, "initial cooldown of an open circuit breaker (0 = 250ms)")
	share := flag.Bool("share", false, "portfolio solves exchange short learned clauses between personalities")
	cubes := flag.Bool("cubes", false, "portfolio solves fall back to cube-and-conquer when the race cannot decide")
	storeDir := flag.String("store", "", "persistent verdict store directory (empty = memory-only)")
	selfcheck := flag.Bool("selfcheck", false, "run the end-to-end smoke instead of serving")
	target := flag.String("target", "", "with -selfcheck: smoke this base URL instead of an in-process server")
	expectRecovered := flag.Bool("expect-store-recovered", false, "with -selfcheck -target: require the server to report store recovery and store hits")
	flag.Parse()

	cfg := service.Config{
		Workers:          *workers,
		QueueDepth:       *queue,
		CacheSize:        *cacheSize,
		DefaultTimeout:   *timeout,
		MaxTimeout:       *maxTimeout,
		DefaultWidth:     *width,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
		Share:            *share,
		Cubes:            *cubes,
	}

	if *selfcheck {
		os.Exit(runSelfcheck(cfg, *target, *expectRecovered))
	}

	var st *store.Store
	if *storeDir != "" {
		var err error
		st, err = store.Open(*storeDir, store.Options{})
		if err != nil {
			// Open only fails on environment errors (unwritable directory);
			// corruption never stops a boot.
			fmt.Fprintln(os.Stderr, "mbaserved:", err)
			os.Exit(1)
		}
		cfg.Store = st
		snap := st.Snapshot()
		fmt.Printf("mbaserved: store %s: recovered %d record(s), %d truncation(s)\n",
			*storeDir, snap.Recovered, snap.Truncated)
	}

	svc := service.New(cfg)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mbaserved:", err)
		os.Exit(1)
	}
	fmt.Printf("mbaserved: listening on http://%s\n", ln.Addr())

	httpSrv := &http.Server{
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	//lint:ignore goroutinelife Serve returns on Shutdown/listener close and errc is buffered, so the sender cannot linger
	go func() { errc <- httpSrv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "mbaserved: %v, shutting down\n", sig)
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "mbaserved:", err)
		os.Exit(1)
	}

	// Cancel in-flight solves first so blocked handlers return quickly,
	// then let the HTTP layer finish writing responses.
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "mbaserved: pool shutdown:", err)
		os.Exit(1)
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "mbaserved: http shutdown:", err)
		os.Exit(1)
	}
	if st != nil {
		// After the pool drained: the last persists are queued, the final
		// group commit flushes them.
		if err := st.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "mbaserved: store close:", err)
			os.Exit(1)
		}
	}
	fmt.Fprintln(os.Stderr, "mbaserved: drained, bye")
}

// runSelfcheck smokes a server and returns the process exit code.
func runSelfcheck(cfg service.Config, target string, expectRecovered bool) int {
	if target != "" {
		if err := smoke(target, expectRecovered); err != nil {
			fmt.Fprintln(os.Stderr, "selfcheck FAIL:", err)
			return 1
		}
		if expectRecovered {
			if err := checkStoreRecovered(target); err != nil {
				fmt.Fprintln(os.Stderr, "selfcheck FAIL:", err)
				return 1
			}
		}
		fmt.Println("selfcheck ok")
		return 0
	}

	// In-process: boot a private server on a free port, smoke it, shut
	// it down, and require the goroutine count to return to baseline —
	// a leaked watcher or worker fails CI here.
	baseline := runtime.NumGoroutine()
	svc := service.New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, "selfcheck FAIL:", err)
		return 1
	}
	httpSrv := &http.Server{Handler: svc.Handler()}
	//lint:ignore goroutinelife Serve returns when httpSrv.Shutdown below closes the listener
	go func() { _ = httpSrv.Serve(ln) }()

	smokeErr := smoke("http://"+ln.Addr().String(), false)

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "selfcheck FAIL: pool shutdown:", err)
		return 1
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "selfcheck FAIL: http shutdown:", err)
		return 1
	}
	if smokeErr != nil {
		fmt.Fprintln(os.Stderr, "selfcheck FAIL:", smokeErr)
		return 1
	}
	// Goroutine counts settle asynchronously (connection teardown,
	// watcher exits); poll briefly before declaring a leak.
	const slack = 4
	deadline := time.Now().Add(3 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+slack {
			break
		}
		if time.Now().After(deadline) {
			fmt.Fprintf(os.Stderr, "selfcheck FAIL: goroutine leak: %d at start, %d after shutdown\n",
				baseline, runtime.NumGoroutine())
			return 1
		}
		time.Sleep(50 * time.Millisecond)
	}
	fmt.Println("selfcheck ok")
	return 0
}

// checkStoreRecovered asserts a warm-restart target actually restarted
// warm: its metrics must report a store that replayed records at boot
// AND served at least one of this smoke's queries from disk (the LRU
// is cold after a restart, so the smoke's first queries fall through
// to the store when the previous run persisted them).
func checkStoreRecovered(base string) error {
	cl := client.New(base)
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	met, err := cl.Metrics(ctx)
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	switch {
	case met.Store == nil:
		return fmt.Errorf("no store metrics; is the server running with -store?")
	case met.Store.Recovered == 0:
		return fmt.Errorf("store recovered 0 records; expected a warm restart (%+v)", *met.Store)
	case met.Store.Hits == 0:
		return fmt.Errorf("store hits = 0; the warm restart served nothing from disk (%+v)", *met.Store)
	}
	fmt.Printf("store: recovered=%d truncated=%d hits=%d puts=%d\n",
		met.Store.Recovered, met.Store.Truncated, met.Store.Hits, met.Store.Puts)
	return nil
}

// smoke drives every endpoint and checks the metrics surface. It owns
// its HTTP transport so it can close idle keep-alive connections before
// the final goroutine accounting: each pooled connection pins a conn
// goroutine server-side, which would read as a leak otherwise.
//
// warmRestart flips the pool-admission expectation: on a cold boot the
// smoke's queries must reach the workers, but on a warm restart the
// same deterministic queries are supposed to come back from the
// persistent store without ever touching the pool.
func smoke(base string, warmRestart bool) error {
	tr := &http.Transport{}
	defer tr.CloseIdleConnections()
	cl := client.New(base, client.WithHTTPClient(&http.Client{Transport: tr}))
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	if err := cl.Health(ctx); err != nil {
		return fmt.Errorf("healthz: %w", err)
	}

	before, err := cl.Metrics(ctx)
	if err != nil {
		return fmt.Errorf("metrics (before): %w", err)
	}

	// Simplify the paper's running example, with a verified proof.
	simpReq := service.SimplifyRequest{Expr: "2*(x|y) - (~x&y) - (x&~y)", Width: 8, Verify: true}
	simp, err := cl.Simplify(ctx, simpReq)
	if err != nil {
		return fmt.Errorf("simplify: %w", err)
	}
	if simp.Verify == nil || simp.Verify.Status != "equivalent" {
		return fmt.Errorf("simplify: verification did not prove equivalence: %+v", simp.Verify)
	}
	if simp.After.Alternation > simp.Before.Alternation {
		return fmt.Errorf("simplify: alternation grew from %d to %d", simp.Before.Alternation, simp.After.Alternation)
	}
	// The identical query again must be a cache hit.
	again, err := cl.Simplify(ctx, simpReq)
	if err != nil {
		return fmt.Errorf("simplify (repeat): %w", err)
	}
	if !again.Cached {
		return fmt.Errorf("simplify (repeat): expected a cache hit")
	}

	// Solve: a portfolio-raced identity, its cached repeat, and a
	// disequality with a witness.
	solveReq := service.SolveRequest{A: "x^y", B: "(x|y)-(x&y)", Width: 8, Portfolio: true}
	sol, err := cl.Solve(ctx, solveReq)
	if err != nil {
		return fmt.Errorf("solve: %w", err)
	}
	if sol.Status != "equivalent" {
		return fmt.Errorf("solve: x^y vs (x|y)-(x&y) = %s, want equivalent", sol.Status)
	}
	solAgain, err := cl.Solve(ctx, solveReq)
	if err != nil {
		return fmt.Errorf("solve (repeat): %w", err)
	}
	if !solAgain.Cached {
		return fmt.Errorf("solve (repeat): expected a cache hit")
	}
	neq, err := cl.Solve(ctx, service.SolveRequest{A: "x", B: "x+1", Width: 8})
	if err != nil {
		return fmt.Errorf("solve (neq): %w", err)
	}
	if neq.Status != "not-equivalent" || neq.Witness == nil {
		return fmt.Errorf("solve (neq): got %s witness=%v, want not-equivalent with witness", neq.Status, neq.Witness)
	}

	// Classify a polynomial MBA.
	cls, err := cl.Classify(ctx, service.ClassifyRequest{Expr: "(x&~y)*(~x&y) + (x&y)*(x|y)"})
	if err != nil {
		return fmt.Errorf("classify: %w", err)
	}
	if cls.Metrics.Kind != "poly" {
		return fmt.Errorf("classify: kind %s, want poly", cls.Metrics.Kind)
	}

	// Concurrent burst: distinct queries so every one does real work.
	// Overload answers are retried with the server's own backoff hint;
	// anything else non-2xx fails the smoke.
	const burst = 32
	errs := make(chan error, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := service.SimplifyRequest{
				Expr:  fmt.Sprintf("%d*(x|y) + %d*(x&y) - (x^y)", i+2, i+3),
				Width: 8,
			}
			var err error
			for attempt := 0; attempt < 5; attempt++ {
				_, err = cl.Simplify(ctx, req)
				se, ok := err.(*client.StatusError)
				if err == nil || !ok || !se.Overloaded() {
					break
				}
				time.Sleep(se.RetryAfter)
			}
			errs <- err
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return fmt.Errorf("burst: %w", err)
		}
	}

	// Metrics surface: cache hits recorded, pool drained back to idle,
	// no goroutine pile-up server-side. Idle connections from the burst
	// are closed first so their server conn goroutines wind down; the
	// poll then waits for both the pool and the goroutine count to
	// settle (conn teardown is asynchronous server-side).
	tr.CloseIdleConnections()
	var after *service.MetricsSnapshot
	deadline := time.Now().Add(5 * time.Second)
	for {
		after, err = cl.Metrics(ctx)
		if err != nil {
			return fmt.Errorf("metrics (after): %w", err)
		}
		if after.Pool.InFlight == 0 && after.Pool.QueueDepth == 0 &&
			after.Goroutines-before.Goroutines <= 16 {
			break
		}
		if time.Now().After(deadline) {
			if after.Pool.InFlight != 0 || after.Pool.QueueDepth != 0 {
				return fmt.Errorf("pool did not drain: in_flight=%d queue=%d", after.Pool.InFlight, after.Pool.QueueDepth)
			}
			return fmt.Errorf("server goroutines grew by %d during the smoke (leak?)", after.Goroutines-before.Goroutines)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if hits := after.Cache.Hits - before.Cache.Hits; hits < 2 {
		return fmt.Errorf("cache hits grew by %d, want >= 2", hits)
	}
	if !warmRestart && after.Pool.Admitted <= before.Pool.Admitted {
		return fmt.Errorf("admitted counter did not move")
	}
	return nil
}
