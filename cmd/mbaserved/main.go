// Command mbaserved runs the MBA simplify-and-solve HTTP service.
//
// Usage:
//
//	mbaserved [-addr 127.0.0.1:8391] [-workers N] [-queue N] [-cache N]
//	          [-timeout 5s] [-max-timeout 60s] [-width 64]
//	          [-breaker-threshold N] [-breaker-cooldown 250ms]
//	          [-share] [-cubes]
//	mbaserved -selfcheck [-target http://host:port]
//
// In server mode it listens on -addr (port 0 picks a free port), prints
// the resolved URL on stdout and serves until SIGINT/SIGTERM, then
// shuts down gracefully: admission stops, in-flight solves are
// cancelled through their budget stop flags, and the worker pool
// drains.
//
// With -selfcheck it drives a server end-to-end — simplify (verified),
// solve (single and portfolio, cached repeats), classify, a concurrent
// burst, and a /debug/metrics scrape asserting cache hits and a quiet
// pool — and exits non-zero on any failure. Without -target it boots a
// private in-process server and additionally checks that shutdown
// returns the process to its baseline goroutine count; with -target it
// smokes a running instance (this is what scripts/ci.sh does).
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sync"
	"syscall"
	"time"

	"mbasolver/internal/service"
	"mbasolver/internal/service/client"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8391", "listen address (port 0 picks a free port)")
	workers := flag.Int("workers", 0, "worker pool size (0 = NumCPU)")
	queue := flag.Int("queue", 0, "admission queue depth (0 = 4x workers)")
	cacheSize := flag.Int("cache", 0, "verdict/simplification cache entries (0 = 4096, negative disables)")
	timeout := flag.Duration("timeout", 5*time.Second, "default per-request solve budget")
	maxTimeout := flag.Duration("max-timeout", 60*time.Second, "hard cap on requested budgets")
	width := flag.Uint("width", 64, "default ring width when requests omit one")
	breakerThreshold := flag.Int("breaker-threshold", 0, "consecutive panic/resource failures opening a personality's circuit breaker (0 = 3, negative disables breakers)")
	breakerCooldown := flag.Duration("breaker-cooldown", 0, "initial cooldown of an open circuit breaker (0 = 250ms)")
	share := flag.Bool("share", false, "portfolio solves exchange short learned clauses between personalities")
	cubes := flag.Bool("cubes", false, "portfolio solves fall back to cube-and-conquer when the race cannot decide")
	selfcheck := flag.Bool("selfcheck", false, "run the end-to-end smoke instead of serving")
	target := flag.String("target", "", "with -selfcheck: smoke this base URL instead of an in-process server")
	flag.Parse()

	cfg := service.Config{
		Workers:          *workers,
		QueueDepth:       *queue,
		CacheSize:        *cacheSize,
		DefaultTimeout:   *timeout,
		MaxTimeout:       *maxTimeout,
		DefaultWidth:     *width,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
		Share:            *share,
		Cubes:            *cubes,
	}

	if *selfcheck {
		os.Exit(runSelfcheck(cfg, *target))
	}

	svc := service.New(cfg)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mbaserved:", err)
		os.Exit(1)
	}
	fmt.Printf("mbaserved: listening on http://%s\n", ln.Addr())

	httpSrv := &http.Server{
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	//lint:ignore goroutinelife Serve returns on Shutdown/listener close and errc is buffered, so the sender cannot linger
	go func() { errc <- httpSrv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "mbaserved: %v, shutting down\n", sig)
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "mbaserved:", err)
		os.Exit(1)
	}

	// Cancel in-flight solves first so blocked handlers return quickly,
	// then let the HTTP layer finish writing responses.
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "mbaserved: pool shutdown:", err)
		os.Exit(1)
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "mbaserved: http shutdown:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "mbaserved: drained, bye")
}

// runSelfcheck smokes a server and returns the process exit code.
func runSelfcheck(cfg service.Config, target string) int {
	if target != "" {
		if err := smoke(target); err != nil {
			fmt.Fprintln(os.Stderr, "selfcheck FAIL:", err)
			return 1
		}
		fmt.Println("selfcheck ok")
		return 0
	}

	// In-process: boot a private server on a free port, smoke it, shut
	// it down, and require the goroutine count to return to baseline —
	// a leaked watcher or worker fails CI here.
	baseline := runtime.NumGoroutine()
	svc := service.New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, "selfcheck FAIL:", err)
		return 1
	}
	httpSrv := &http.Server{Handler: svc.Handler()}
	//lint:ignore goroutinelife Serve returns when httpSrv.Shutdown below closes the listener
	go func() { _ = httpSrv.Serve(ln) }()

	smokeErr := smoke("http://" + ln.Addr().String())

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "selfcheck FAIL: pool shutdown:", err)
		return 1
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "selfcheck FAIL: http shutdown:", err)
		return 1
	}
	if smokeErr != nil {
		fmt.Fprintln(os.Stderr, "selfcheck FAIL:", smokeErr)
		return 1
	}
	// Goroutine counts settle asynchronously (connection teardown,
	// watcher exits); poll briefly before declaring a leak.
	const slack = 4
	deadline := time.Now().Add(3 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+slack {
			break
		}
		if time.Now().After(deadline) {
			fmt.Fprintf(os.Stderr, "selfcheck FAIL: goroutine leak: %d at start, %d after shutdown\n",
				baseline, runtime.NumGoroutine())
			return 1
		}
		time.Sleep(50 * time.Millisecond)
	}
	fmt.Println("selfcheck ok")
	return 0
}

// smoke drives every endpoint and checks the metrics surface. It owns
// its HTTP transport so it can close idle keep-alive connections before
// the final goroutine accounting: each pooled connection pins a conn
// goroutine server-side, which would read as a leak otherwise.
func smoke(base string) error {
	tr := &http.Transport{}
	defer tr.CloseIdleConnections()
	cl := client.New(base, client.WithHTTPClient(&http.Client{Transport: tr}))
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	if err := cl.Health(ctx); err != nil {
		return fmt.Errorf("healthz: %w", err)
	}

	before, err := cl.Metrics(ctx)
	if err != nil {
		return fmt.Errorf("metrics (before): %w", err)
	}

	// Simplify the paper's running example, with a verified proof.
	simpReq := service.SimplifyRequest{Expr: "2*(x|y) - (~x&y) - (x&~y)", Width: 8, Verify: true}
	simp, err := cl.Simplify(ctx, simpReq)
	if err != nil {
		return fmt.Errorf("simplify: %w", err)
	}
	if simp.Verify == nil || simp.Verify.Status != "equivalent" {
		return fmt.Errorf("simplify: verification did not prove equivalence: %+v", simp.Verify)
	}
	if simp.After.Alternation > simp.Before.Alternation {
		return fmt.Errorf("simplify: alternation grew from %d to %d", simp.Before.Alternation, simp.After.Alternation)
	}
	// The identical query again must be a cache hit.
	again, err := cl.Simplify(ctx, simpReq)
	if err != nil {
		return fmt.Errorf("simplify (repeat): %w", err)
	}
	if !again.Cached {
		return fmt.Errorf("simplify (repeat): expected a cache hit")
	}

	// Solve: a portfolio-raced identity, its cached repeat, and a
	// disequality with a witness.
	solveReq := service.SolveRequest{A: "x^y", B: "(x|y)-(x&y)", Width: 8, Portfolio: true}
	sol, err := cl.Solve(ctx, solveReq)
	if err != nil {
		return fmt.Errorf("solve: %w", err)
	}
	if sol.Status != "equivalent" {
		return fmt.Errorf("solve: x^y vs (x|y)-(x&y) = %s, want equivalent", sol.Status)
	}
	solAgain, err := cl.Solve(ctx, solveReq)
	if err != nil {
		return fmt.Errorf("solve (repeat): %w", err)
	}
	if !solAgain.Cached {
		return fmt.Errorf("solve (repeat): expected a cache hit")
	}
	neq, err := cl.Solve(ctx, service.SolveRequest{A: "x", B: "x+1", Width: 8})
	if err != nil {
		return fmt.Errorf("solve (neq): %w", err)
	}
	if neq.Status != "not-equivalent" || neq.Witness == nil {
		return fmt.Errorf("solve (neq): got %s witness=%v, want not-equivalent with witness", neq.Status, neq.Witness)
	}

	// Classify a polynomial MBA.
	cls, err := cl.Classify(ctx, service.ClassifyRequest{Expr: "(x&~y)*(~x&y) + (x&y)*(x|y)"})
	if err != nil {
		return fmt.Errorf("classify: %w", err)
	}
	if cls.Metrics.Kind != "poly" {
		return fmt.Errorf("classify: kind %s, want poly", cls.Metrics.Kind)
	}

	// Concurrent burst: distinct queries so every one does real work.
	// Overload answers are retried with the server's own backoff hint;
	// anything else non-2xx fails the smoke.
	const burst = 32
	errs := make(chan error, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := service.SimplifyRequest{
				Expr:  fmt.Sprintf("%d*(x|y) + %d*(x&y) - (x^y)", i+2, i+3),
				Width: 8,
			}
			var err error
			for attempt := 0; attempt < 5; attempt++ {
				_, err = cl.Simplify(ctx, req)
				se, ok := err.(*client.StatusError)
				if err == nil || !ok || !se.Overloaded() {
					break
				}
				time.Sleep(se.RetryAfter)
			}
			errs <- err
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return fmt.Errorf("burst: %w", err)
		}
	}

	// Metrics surface: cache hits recorded, pool drained back to idle,
	// no goroutine pile-up server-side. Idle connections from the burst
	// are closed first so their server conn goroutines wind down; the
	// poll then waits for both the pool and the goroutine count to
	// settle (conn teardown is asynchronous server-side).
	tr.CloseIdleConnections()
	var after *service.MetricsSnapshot
	deadline := time.Now().Add(5 * time.Second)
	for {
		after, err = cl.Metrics(ctx)
		if err != nil {
			return fmt.Errorf("metrics (after): %w", err)
		}
		if after.Pool.InFlight == 0 && after.Pool.QueueDepth == 0 &&
			after.Goroutines-before.Goroutines <= 16 {
			break
		}
		if time.Now().After(deadline) {
			if after.Pool.InFlight != 0 || after.Pool.QueueDepth != 0 {
				return fmt.Errorf("pool did not drain: in_flight=%d queue=%d", after.Pool.InFlight, after.Pool.QueueDepth)
			}
			return fmt.Errorf("server goroutines grew by %d during the smoke (leak?)", after.Goroutines-before.Goroutines)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if hits := after.Cache.Hits - before.Cache.Hits; hits < 2 {
		return fmt.Errorf("cache hits grew by %d, want >= 2", hits)
	}
	if after.Pool.Admitted <= before.Pool.Admitted {
		return fmt.Errorf("admitted counter did not move")
	}
	return nil
}
