// Command mbasolver simplifies MBA expressions from the command line
// and optionally verifies the result with the in-tree SMT solvers.
//
// Usage:
//
//	mbasolver [-width N] [-basis conj|disj] [-verify] [-metrics] EXPR...
//	echo "2*(x|y) - (~x&y) - (x&~y)" | mbasolver
//
// Each expression is printed as "input  =>  simplified". With -metrics
// the complexity metrics before and after are reported; with -verify
// the equivalence of input and output is proven at the given width.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"mbasolver"
	"mbasolver/internal/bv"
	"mbasolver/internal/smtlib"
)

func main() {
	width := flag.Uint("width", 64, "bit width of the ring Z/2^n (1..64)")
	basis := flag.String("basis", "conj", "normalization basis: conj (Table 4) or disj (Table 9)")
	verify := flag.Bool("verify", false, "prove input == output with the SMT solver")
	showMetrics := flag.Bool("metrics", false, "print complexity metrics before and after")
	smt2 := flag.String("smt2", "", "write the input==output queries as an SMT-LIB script to this file ('-' for stdout)")
	flag.Parse()

	opts := mbasolver.Options{Width: *width}
	switch *basis {
	case "conj":
	case "disj":
		opts.UseDisjunctionBasis = true
	default:
		fmt.Fprintf(os.Stderr, "mbasolver: unknown basis %q (want conj or disj)\n", *basis)
		os.Exit(2)
	}
	s := mbasolver.NewSimplifier(opts)

	inputs := flag.Args()
	if len(inputs) == 0 {
		sc := bufio.NewScanner(os.Stdin)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line != "" && !strings.HasPrefix(line, "#") {
				inputs = append(inputs, line)
			}
		}
		if err := sc.Err(); err != nil {
			fmt.Fprintln(os.Stderr, "mbasolver: reading stdin:", err)
			os.Exit(1)
		}
	}

	var smtQueries []*bv.Term
	exit := 0
	for _, src := range inputs {
		e, err := mbasolver.Parse(src)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mbasolver: %q: %v\n", src, err)
			exit = 1
			continue
		}
		simplified := s.Simplify(e)
		fmt.Printf("%s  =>  %s\n", e, simplified)
		if *smt2 != "" {
			// Namespace the variables per query so that asserting all
			// disequalities in one script is UNSAT if and only if every
			// individual obligation is UNSAT (obligations over disjoint
			// variables are independent).
			prefix := fmt.Sprintf("q%d_", len(smtQueries))
			in, _ := mbasolver.ToBitvector(e.RenameVars(prefix), *width)
			out, _ := mbasolver.ToBitvector(simplified.RenameVars(prefix), *width)
			smtQueries = append(smtQueries, bv.Predicate(bv.Ne, in, out))
		}
		if *showMetrics {
			mb, ma := e.Metrics(), simplified.Metrics()
			fmt.Printf("  before: kind=%s vars=%d alternation=%d length=%d terms=%d\n",
				mb.Kind, mb.NumVars, mb.Alternation, mb.Length, mb.NumTerms)
			fmt.Printf("  after:  kind=%s vars=%d alternation=%d length=%d terms=%d\n",
				ma.Kind, ma.NumVars, ma.Alternation, ma.Length, ma.NumTerms)
		}
		if *verify {
			v := mbasolver.CheckEquivalenceRaw(e, simplified, *width)
			switch {
			case v.Timeout:
				fmt.Printf("  verify: timeout after %v\n", v.Elapsed)
			case v.Equivalent:
				fmt.Printf("  verify: equivalent at width %d (%v)\n", *width, v.Elapsed)
			default:
				fmt.Printf("  verify: NOT EQUIVALENT, witness %v\n", v.Witness)
				exit = 1
			}
		}
	}
	if *smt2 != "" && len(smtQueries) > 0 {
		w := os.Stdout
		if *smt2 != "-" {
			f, err := os.Create(*smt2)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mbasolver:", err)
				os.Exit(1)
			}
			defer f.Close()
			w = f
		}
		// Variables are namespaced per query above, so the combined
		// script is unsat exactly when every simplification is correct;
		// a sat answer's model pinpoints the broken query by prefix.
		if err := smtlib.WriteQuery(w, smtQueries, "QF_BV"); err != nil {
			fmt.Fprintln(os.Stderr, "mbasolver:", err)
			os.Exit(1)
		}
	}
	os.Exit(exit)
}
