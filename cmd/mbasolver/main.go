// Command mbasolver simplifies MBA expressions from the command line
// and optionally verifies the result with the in-tree SMT solvers.
//
// Usage:
//
//	mbasolver [-width N] [-basis conj|disj] [-verify] [-metrics] [-json] EXPR...
//	echo "2*(x|y) - (~x&y) - (x&~y)" | mbasolver
//
// Each expression is printed as "input  =>  simplified". With -metrics
// the complexity metrics before and after are reported; with -verify
// the equivalence of input and output is proven at the given width.
// With -json each result is emitted as one JSON object per line using
// the same response schema mbaserved serves on /v1/simplify, so
// scripted consumers can switch between CLI and service transparently.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mbasolver"
	"mbasolver/internal/bv"
	"mbasolver/internal/expr"
	"mbasolver/internal/parser"
	"mbasolver/internal/service"
	"mbasolver/internal/smtlib"
)

func main() {
	width := flag.Uint("width", 64, "bit width of the ring Z/2^n (1..64)")
	basis := flag.String("basis", "conj", "normalization basis: conj (Table 4) or disj (Table 9)")
	verify := flag.Bool("verify", false, "prove input == output with the SMT solver")
	showMetrics := flag.Bool("metrics", false, "print complexity metrics before and after")
	smt2 := flag.String("smt2", "", "write the input==output queries as an SMT-LIB script to this file ('-' for stdout)")
	jsonOut := flag.Bool("json", false, "emit one JSON object per input (mbaserved /v1/simplify schema)")
	flag.Parse()

	opts := mbasolver.Options{Width: *width}
	switch *basis {
	case "conj":
	case "disj":
		opts.UseDisjunctionBasis = true
	default:
		fmt.Fprintf(os.Stderr, "mbasolver: unknown basis %q (want conj or disj)\n", *basis)
		os.Exit(2)
	}
	s := mbasolver.NewSimplifier(opts)

	inputs := flag.Args()
	if len(inputs) == 0 {
		sc := bufio.NewScanner(os.Stdin)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line != "" && !strings.HasPrefix(line, "#") {
				inputs = append(inputs, line)
			}
		}
		if err := sc.Err(); err != nil {
			fmt.Fprintln(os.Stderr, "mbasolver: reading stdin:", err)
			os.Exit(1)
		}
	}

	var smtQueries []*bv.Term
	enc := json.NewEncoder(os.Stdout)
	enc.SetEscapeHTML(false)
	exit := 0
	for _, src := range inputs {
		e, err := mbasolver.Parse(src)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mbasolver: %q: %v\n", src, err)
			exit = 1
			continue
		}
		start := time.Now()
		simplified := s.Simplify(e)
		elapsed := time.Since(start)
		var verdict *mbasolver.Verdict
		if *verify {
			v := mbasolver.CheckEquivalenceRaw(e, simplified, *width)
			verdict = &v
			if !v.Equivalent && !v.Timeout {
				exit = 1
			}
		}
		if *jsonOut {
			if err := enc.Encode(jsonResponse(e, simplified, *width, *basis, elapsed, verdict)); err != nil {
				fmt.Fprintln(os.Stderr, "mbasolver:", err)
				exit = 1
			}
		} else {
			fmt.Printf("%s  =>  %s\n", e, simplified)
		}
		if *smt2 != "" {
			// Namespace the variables per query so that asserting all
			// disequalities in one script is UNSAT if and only if every
			// individual obligation is UNSAT (obligations over disjoint
			// variables are independent).
			prefix := fmt.Sprintf("q%d_", len(smtQueries))
			in, _ := mbasolver.ToBitvector(e.RenameVars(prefix), *width)
			out, _ := mbasolver.ToBitvector(simplified.RenameVars(prefix), *width)
			smtQueries = append(smtQueries, bv.Predicate(bv.Ne, in, out))
		}
		if *showMetrics && !*jsonOut {
			mb, ma := e.Metrics(), simplified.Metrics()
			fmt.Printf("  before: kind=%s vars=%d alternation=%d length=%d terms=%d\n",
				mb.Kind, mb.NumVars, mb.Alternation, mb.Length, mb.NumTerms)
			fmt.Printf("  after:  kind=%s vars=%d alternation=%d length=%d terms=%d\n",
				ma.Kind, ma.NumVars, ma.Alternation, ma.Length, ma.NumTerms)
		}
		if verdict != nil && !*jsonOut {
			switch {
			case verdict.Timeout:
				fmt.Printf("  verify: timeout after %v\n", verdict.Elapsed)
			case verdict.Equivalent:
				fmt.Printf("  verify: equivalent at width %d (%v)\n", *width, verdict.Elapsed)
			default:
				fmt.Printf("  verify: NOT EQUIVALENT, witness %v\n", verdict.Witness)
			}
		}
	}
	if *smt2 != "" && len(smtQueries) > 0 {
		w := os.Stdout
		if *smt2 != "-" {
			f, err := os.Create(*smt2)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mbasolver:", err)
				os.Exit(1)
			}
			defer f.Close()
			w = f
		}
		// Variables are namespaced per query above, so the combined
		// script is unsat exactly when every simplification is correct;
		// a sat answer's model pinpoints the broken query by prefix.
		if err := smtlib.WriteQuery(w, smtQueries, "QF_BV"); err != nil {
			fmt.Fprintln(os.Stderr, "mbasolver:", err)
			os.Exit(1)
		}
	}
	os.Exit(exit)
}

// jsonResponse assembles the mbaserved /v1/simplify response schema
// for one CLI simplification, so -json output is byte-compatible with
// the service.
func jsonResponse(in, out mbasolver.Expression, width uint, basis string,
	elapsed time.Duration, verdict *mbasolver.Verdict) service.SimplifyResponse {

	resp := service.SimplifyResponse{
		Input:      in.String(),
		Simplified: out.String(),
		Width:      width,
		Basis:      basis,
		Before:     wireMetrics(in.Metrics()),
		After:      wireMetrics(out.Metrics()),
		ElapsedMS:  float64(elapsed) / float64(time.Millisecond),
	}
	if ast, err := parser.Parse(in.String()); err == nil {
		resp.Hash = expr.HashString(ast)
	}
	if verdict != nil {
		sv := &service.SolveResponse{
			Width:     width,
			Solver:    "btorsim",
			Witness:   verdict.Witness,
			ElapsedMS: float64(verdict.Elapsed) / float64(time.Millisecond),
		}
		switch {
		case verdict.Timeout:
			sv.Status = "timeout"
		case verdict.Equivalent:
			sv.Status = "equivalent"
		default:
			sv.Status = "not-equivalent"
		}
		resp.Verify = sv
	}
	return resp
}

func wireMetrics(m mbasolver.Metrics) service.ExprMetrics {
	return service.ExprMetrics{
		Kind:        m.Kind,
		NumVars:     m.NumVars,
		Alternation: m.Alternation,
		Length:      m.Length,
		NumTerms:    m.NumTerms,
		MaxCoeff:    m.MaxCoeff,
	}
}
