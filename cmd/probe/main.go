package main

import (
	"fmt"
	"time"

	"mbasolver/internal/gen"
	"mbasolver/internal/sat"
	"mbasolver/internal/smt"
)

func main() {
	// Compare SAT option sets on linear MBA UNSAT instances.
	configs := map[string]sat.Options{}
	base := sat.DefaultOptions()
	configs["default"] = base
	strong := base
	strong.VarDecay = 0.99
	strong.LearntsFraction = 2.0
	configs["strong"] = strong
	weak := base
	weak.VarDecay = 0.85
	weak.RestartLuby = false
	weak.RestartBase = 400
	weak.RestartInc = 2.0
	weak.LearntsFraction = 0.15
	configs["weak"] = weak
	weakPhase := weak
	weakPhase.PhaseSaving = false
	configs["weak-nophase"] = weakPhase

	g := gen.New(gen.Config{Seed: 100})
	samples := make([]gen.Sample, 12)
	for i := range samples {
		samples[i] = g.Linear()
	}
	for name, opts := range configs {
		sv := smt.NewCustom("probe", 2, opts) // RewriteFull
		solved := 0
		var conf int64
		start := time.Now()
		for _, s := range samples {
			res := sv.CheckEquiv(s.Obfuscated, s.Ground, 16, smt.Budget{Conflicts: 60000})
			if res.Status == smt.Equivalent {
				solved++
			}
			conf += res.Conflicts
		}
		fmt.Printf("%-14s solved %d/12 conflicts=%d elapsed=%v\n", name, solved, conf, time.Since(start))
	}
}
