// Command mbasat is a standalone DIMACS CNF solver over the in-tree
// CDCL engine, with optional DRAT proof output.
//
// Usage:
//
//	mbasat [-proof out.drat] [-conflicts N] [-luby=false] [file.cnf]
//
// Prints "s SATISFIABLE" with a "v ..." model line, "s UNSATISFIABLE",
// or "s UNKNOWN" when the budget runs out; exit codes follow the SAT
// competition convention (10 / 20 / 0).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"mbasolver/internal/sat"
)

func main() {
	proofPath := flag.String("proof", "", "write a DRAT proof to this file (UNSAT runs)")
	conflicts := flag.Int64("conflicts", 0, "conflict budget (0 = unlimited)")
	luby := flag.Bool("luby", true, "Luby restarts (false = geometric)")
	flag.Parse()

	opts := sat.DefaultOptions()
	opts.RestartLuby = *luby
	solver := sat.New(opts)

	if *proofPath != "" {
		f, err := os.Create(*proofPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		solver.SetProofWriter(f)
	}

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	if _, err := sat.ParseDIMACS(solver, in); err != nil {
		fatal(err)
	}

	switch solver.Solve(sat.Budget{Conflicts: *conflicts}) {
	case sat.Sat:
		fmt.Println("s SATISFIABLE")
		var sb strings.Builder
		sb.WriteString("v")
		for i, val := range solver.Model() {
			lit := i + 1
			if !val {
				lit = -lit
			}
			fmt.Fprintf(&sb, " %d", lit)
		}
		sb.WriteString(" 0")
		fmt.Println(sb.String())
		os.Exit(10)
	case sat.Unsat:
		fmt.Println("s UNSATISFIABLE")
		os.Exit(20)
	default:
		fmt.Println("s UNKNOWN")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mbasat:", err)
	os.Exit(1)
}
