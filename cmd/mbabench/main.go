// Command mbabench reruns the paper's experiments and prints each
// table and figure in the paper's shape.
//
// Usage:
//
//	mbabench [-exp all|table1|table2|figure3|figure4|table6|table7|figure6|table8]
//	         [-n 100] [-seed 1] [-width 8] [-conflicts 30000] [-timeout 0]
//	         [-corpus file] [-portfolio]
//
// -n is the per-category corpus size (the paper uses 1000; the default
// of 100 finishes in minutes on a laptop). -conflicts is the per-query
// CDCL budget standing in for the paper's 1-hour wall-clock timeout;
// -timeout adds a wall-clock bound per query (seconds, 0 = none).
// -portfolio adds a virtual solver column racing all three
// personalities per query with first-verdict-wins cancellation — the
// analogue of the paper's virtual best solver.
//
// -incremental runs the experiment queries through warm per-worker
// incremental solver contexts instead of a fresh solver per query
// (verdicts are identical; see internal/smt's differential tests). The
// default stays fresh so the tables reproduce the paper's
// query-isolated setup.
//
// -share and -cubes (with -portfolio) turn the racing personalities
// into a cooperating portfolio: -share exchanges short learned clauses
// between the engines during each race, and -cubes adds a
// cube-and-conquer fallback that splits queries the screen race cannot
// decide on the most active variables. Verdicts are unchanged; the
// point is fewer timeouts at a fixed conflict budget.
//
// -bench FILE switches to the incremental-vs-fresh solver benchmark:
// it runs every personality over a repeated corpus in both modes,
// writes the JSON report (scripts/bench.sh keeps it in
// BENCH_solver.json) to FILE ("-" = stdout) and exits. -repeats and
// -bench-samples size the workload; -seed and -width apply.
//
// -cluster-bench FILE switches to the sharded-cluster benchmark: it
// boots in-process mbaserved nodes behind an mbarouter ring at several
// node counts, drives one known-answer batch through each cluster cold
// and warm, verifies every definitive verdict against ground truth,
// and writes the JSON report (scripts/bench.sh keeps it in
// BENCH_cluster.json). -bench-samples, -repeats, -seed and -width
// size the workload.
//
// -eval-bench FILE switches to the evaluation-engine benchmark: the
// tree-walking interpreter against the flat bytecode program (scalar,
// bitsliced and auto engines) over a generated MBA corpus, with every
// bytecode output differentially checked against the interpreter. The
// JSON report goes to FILE (scripts/bench.sh keeps it in
// BENCH_eval.json). -bench-samples and -seed size the workload; the
// width defaults to 64 (the corpus the paper's evaluation targets)
// unless -width is given explicitly.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mbasolver/internal/gen"
	"mbasolver/internal/harness"
	"mbasolver/internal/portfolio"
	"mbasolver/internal/smt"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all, table1, table2, figure3, figure4, table6, table7, figure6, table8, ablation")
	n := flag.Int("n", 100, "corpus samples per category")
	seed := flag.Int64("seed", 1, "corpus generator seed")
	width := flag.Uint("width", 8, "solver bitvector width")
	conflicts := flag.Int64("conflicts", 30000, "per-query CDCL conflict budget (the scaled-down 1-hour timeout)")
	timeout := flag.Float64("timeout", 0, "per-query wall-clock budget in seconds (0 = none)")
	corpusFile := flag.String("corpus", "", "load corpus from file instead of generating")
	csvOut := flag.String("csv", "", "also export raw per-query outcomes as CSV to this file")
	usePortfolio := flag.Bool("portfolio", false, "add a virtual solver column racing all personalities per query")
	incremental := flag.Bool("incremental", false, "solve through warm incremental contexts instead of a fresh solver per query")
	share := flag.Bool("share", false, "portfolio: personalities exchange short learned clauses during the race")
	cubes := flag.Bool("cubes", false, "portfolio: cube-and-conquer fallback for queries the screen race cannot decide")
	benchOut := flag.String("bench", "", "run the incremental-vs-fresh solver benchmark and write the JSON report to this file (- = stdout)")
	repeats := flag.Int("repeats", 4, "bench: round-robin passes over the corpus")
	benchSamples := flag.Int("bench-samples", 6, "bench: corpus equations")
	clusterOut := flag.String("cluster-bench", "", "run the sharded-cluster benchmark (in-process nodes behind a router at 1/2/3 nodes, cold vs warm shards) and write the JSON report to this file (- = stdout)")
	evalOut := flag.String("eval-bench", "", "run the evaluation-engine benchmark (tree interpreter vs bytecode engines) and write the JSON report to this file (- = stdout)")
	flag.Parse()

	if *evalOut != "" {
		// The eval bench defaults to width 64 — the full-ring corpus the
		// paper's evaluation targets — and to its own corpus size; the
		// -width and -bench-samples flags override only when set
		// explicitly (their global defaults suit the solver bench).
		evalCfg := harness.EvalBenchConfig{Seed: *seed, Width: 64}
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "width":
				evalCfg.Width = *width
			case "bench-samples":
				evalCfg.Samples = *benchSamples
			}
		})
		step("benchmarking evaluation engines (width %d)...", evalCfg.Width)
		report := harness.RunEvalBench(evalCfg)
		out := os.Stdout
		if *evalOut != "-" {
			f, err := os.Create(*evalOut)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			out = f
		}
		if err := harness.WriteEvalBenchJSON(out, report); err != nil {
			fatal(err)
		}
		for _, eng := range []string{"bytecode", "bitsliced", "auto"} {
			step("%s: %.1fx over the tree interpreter", eng, report.Speedup[eng])
		}
		step("%d evaluation mismatches", report.Mismatches)
		if report.Mismatches != 0 {
			fatal(fmt.Errorf("eval bench found %d mismatches against the interpreter", report.Mismatches))
		}
		return
	}

	if (*share || *cubes) && !*usePortfolio && *benchOut == "" {
		fatal(fmt.Errorf("-share and -cubes modify the portfolio column; pass -portfolio too"))
	}

	if *clusterOut != "" {
		step("benchmarking the sharded cluster (%d equations + refuted variants, width %d)...",
			*benchSamples, *width)
		report, err := harness.RunClusterBench(harness.ClusterBenchConfig{
			Samples:     *benchSamples,
			Seed:        *seed,
			Width:       *width,
			WarmRepeats: *repeats,
		})
		if err != nil {
			fatal(err)
		}
		out := os.Stdout
		if *clusterOut != "-" {
			f, err := os.Create(*clusterOut)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			out = f
		}
		if err := harness.WriteClusterBenchJSON(out, report); err != nil {
			fatal(err)
		}
		for _, n := range report.Config.NodeCounts {
			key := fmt.Sprintf("%d", n)
			step("%s node(s): cold scaling %.2fx, warm scaling %.2fx, cold/warm speedup %.2fx",
				key, report.ColdScaling[key], report.WarmScaling[key], report.ColdWarmSpeedup[key])
		}
		step("warm restart from the verdict store: %.2fx over a cold fill", report.RestartSpeedup)
		step("%d verdict mismatches", report.Mismatches)
		if report.Mismatches != 0 {
			fatal(fmt.Errorf("cluster bench found %d verdict mismatches", report.Mismatches))
		}
		return
	}

	if *benchOut != "" {
		step("benchmarking incremental vs fresh solving (%d equations x %d repeats, width %d)...",
			*benchSamples, *repeats, *width)
		report := harness.RunSolverBench(harness.BenchConfig{
			Samples: *benchSamples,
			Seed:    *seed,
			Width:   *width,
			Repeats: *repeats,
		})
		step("benchmarking solo race vs clause sharing + cube-and-conquer...")
		par := harness.RunParallelBench(harness.ParallelBenchConfig{})
		report.Parallel = &par
		out := os.Stdout
		if *benchOut != "-" {
			f, err := os.Create(*benchOut)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			out = f
		}
		if err := harness.WriteBenchJSON(out, report); err != nil {
			fatal(err)
		}
		step("overall speedup %.2fx, %d verdict mismatches", report.Overall, report.Mismatches)
		step("parallel: %d solo timeouts vs %d with share+cubes, %d mismatches",
			par.SoloTimeouts, par.ParallelTimeouts, par.Mismatches)
		return
	}

	var samples []gen.Sample
	if *corpusFile != "" {
		f, err := os.Open(*corpusFile)
		if err != nil {
			fatal(err)
		}
		samples, err = gen.Load(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	} else {
		samples = gen.New(gen.Config{Seed: *seed}).Corpus(*n)
	}

	cfg := harness.Config{
		Width: *width,
		Budget: smt.Budget{
			Conflicts: *conflicts,
			Timeout:   time.Duration(*timeout * float64(time.Second)),
		},
		Portfolio:   *usePortfolio,
		Incremental: *incremental,
		Share:       *share,
		Cubes:       *cubes,
	}
	solvers := smt.All()
	names := make([]string, len(solvers))
	for i, s := range solvers {
		names[i] = s.Name()
	}
	if *usePortfolio {
		names = append(names, portfolio.Name)
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }
	ran := false

	if want("table1") {
		ran = true
		fmt.Println(harness.Table1(samples))
	}

	var baseline []harness.Outcome
	needBaseline := want("table2") || want("figure3") || want("figure4")
	if needBaseline {
		ran = true
		step("running baseline solvers on %d equations (width %d, %d conflicts)...",
			len(samples), *width, *conflicts)
		baseline = harness.RunBaseline(samples, solvers, cfg)
	}
	if want("table2") {
		fmt.Println(harness.SolverTable("Table 2: solvers on the raw MBA corpus", baseline, names))
	}
	if want("figure3") {
		fmt.Println(harness.Figure3(baseline))
		fmt.Println(harness.PlotFigure3(baseline))
	}
	if want("figure4") {
		fmt.Println(harness.Figure4(baseline, names))
		fmt.Println(harness.PlotFigure4(baseline, names))
	}
	if *csvOut != "" && baseline != nil {
		f, err := os.Create(*csvOut)
		if err != nil {
			fatal(err)
		}
		if err := harness.WriteOutcomesCSV(f, baseline); err != nil {
			fatal(err)
		}
		f.Close()
		step("wrote raw outcomes to %s", *csvOut)
	}

	var simplified []harness.Outcome
	if want("table6") || want("figure6") {
		ran = true
		step("running solvers on MBA-Solver-simplified corpus...")
		simplified = harness.RunSimplified(samples, solvers, cfg)
	}
	if want("table6") {
		fmt.Println(harness.SolverTable("Table 6: solvers on MBA-Solver's simplification result", simplified, names))
	}
	if want("figure6") {
		fmt.Println(harness.Figure6(simplified))
		fmt.Println(harness.PlotFigure6(simplified))
	}

	if want("table7") {
		ran = true
		step("running peer-tool comparison (SSPAM, Syntia, MBA-Solver)...")
		rows := harness.RunPeers(samples, harness.DefaultTools(*width), solvers, cfg)
		fmt.Println(harness.Table7(rows, names))
	}

	if want("ablation") {
		ran = true
		step("running simplifier ablation...")
		fmt.Println(harness.AblationTable(harness.RunAblation(samples)))
	}

	if want("table8") {
		ran = true
		step("profiling MBA-Solver by input alternation...")
		rows := harness.ProfileSimplifier(gen.New(gen.Config{Seed: *seed + 7}), 20)
		fmt.Println(harness.Table8(rows))
	}

	if !ran {
		fatal(fmt.Errorf("unknown experiment %q", *exp))
	}
}

func step(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "== "+strings.TrimSpace(format)+"\n", args...)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mbabench:", err)
	os.Exit(1)
}
