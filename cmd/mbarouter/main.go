// Command mbarouter runs the stateless cluster router in front of a
// set of mbaserved nodes.
//
// Usage:
//
//	mbarouter -nodes http://h1:8391,http://h2:8391 [-addr 127.0.0.1:8390]
//	          [-vnodes 64] [-probe-interval 500ms] [-probe-timeout 2s]
//	          [-eject-threshold 3] [-eject-cooldown 500ms]
//	          [-max-batch 1024]
//	mbarouter -selfcheck -target http://host:port
//
// The router owns no solver state — only the consistent-hash ring, the
// per-node health view and open connections — so any number of routers
// can front the same nodes without coordination. It shards requests by
// canonical expression digest (each digest has one stable owner node,
// keeping that node's verdict cache and incremental solver contexts
// hot for its shard), splits /v1/batch into per-node sub-batches,
// reassembles results in input order, fails single requests over along
// the ring on transport errors and gateway-class answers, and degrades
// items whose every replica is down to reasoned Unknown verdicts
// rather than failing requests.
//
// With -selfcheck -target it smokes a running router: readiness, a
// single solve, and a mixed batch with duplicate items (asserting
// input order and dedup server-side). scripts/ci.sh uses this in the
// cluster smoke stage.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mbasolver/internal/cluster"
	"mbasolver/internal/service"
	"mbasolver/internal/service/client"
	"mbasolver/internal/smt"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8390", "listen address (port 0 picks a free port)")
	nodes := flag.String("nodes", "", "comma-separated backend base URLs (required in server mode)")
	vnodes := flag.Int("vnodes", 0, "virtual nodes per backend on the hash ring (0 = 64)")
	probeInterval := flag.Duration("probe-interval", 0, "active /readyz probe period (0 = 500ms, negative disables)")
	probeTimeout := flag.Duration("probe-timeout", 0, "per-probe timeout (0 = 2s)")
	ejectThreshold := flag.Int("eject-threshold", 0, "consecutive failures ejecting a node (0 = 3)")
	ejectCooldown := flag.Duration("eject-cooldown", 0, "initial ejection cooldown before a readmission probe (0 = 500ms)")
	maxBatch := flag.Int("max-batch", 0, "max items per routed batch (0 = 1024)")
	selfcheck := flag.Bool("selfcheck", false, "smoke a running router instead of serving")
	target := flag.String("target", "", "with -selfcheck: the router base URL to smoke")
	flag.Parse()

	if *selfcheck {
		if *target == "" {
			fmt.Fprintln(os.Stderr, "mbarouter: -selfcheck requires -target")
			os.Exit(2)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		if err := smoke(ctx, *target); err != nil {
			fmt.Fprintln(os.Stderr, "selfcheck FAIL:", err)
			os.Exit(1)
		}
		fmt.Println("selfcheck ok")
		return
	}

	nodeList := splitNodes(*nodes)
	if len(nodeList) == 0 {
		fmt.Fprintln(os.Stderr, "mbarouter: -nodes is required (comma-separated base URLs)")
		os.Exit(2)
	}

	rt, err := cluster.NewRouter(cluster.RouterConfig{
		Nodes:         nodeList,
		VirtualNodes:  *vnodes,
		ProbeInterval: *probeInterval,
		ProbeTimeout:  *probeTimeout,
		Health: cluster.HealthOptions{
			Threshold: *ejectThreshold,
			Cooldown:  *ejectCooldown,
		},
		MaxBatchItems: *maxBatch,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mbarouter:", err)
		os.Exit(1)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mbarouter:", err)
		os.Exit(1)
	}
	fmt.Printf("mbarouter: routing %d nodes on http://%s\n", len(nodeList), ln.Addr())

	httpSrv := &http.Server{
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	//lint:ignore goroutinelife Serve returns on Shutdown/listener close and errc is buffered, so the sender cannot linger
	go func() { errc <- httpSrv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "mbarouter: %v, shutting down\n", sig)
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "mbarouter:", err)
		os.Exit(1)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "mbarouter: http shutdown:", err)
		os.Exit(1)
	}
	rt.Close()
	fmt.Fprintln(os.Stderr, "mbarouter: drained, bye")
}

func splitNodes(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, strings.TrimRight(p, "/"))
		}
	}
	return out
}

// smoke drives a running router end-to-end through the typed client:
// readiness, one routed solve, and a batch mixing solves, a duplicate
// pair and a simplify, asserting order, dedup and correct verdicts.
// The caller's context bounds the whole run, so an operator's Ctrl-C
// (or a test's cancel) stops it mid-flight.
func smoke(ctx context.Context, base string) error {
	tr := &http.Transport{}
	defer tr.CloseIdleConnections()
	cl := client.New(base, client.WithHTTPClient(&http.Client{Transport: tr}))

	if err := cl.Ready(ctx); err != nil {
		return fmt.Errorf("readyz: %w", err)
	}

	sol, err := cl.Solve(ctx, service.SolveRequest{A: "x^y", B: "(x|y)-(x&y)", Width: 8})
	if err != nil {
		return fmt.Errorf("routed solve: %w", err)
	}
	if sol.Status != smt.Equivalent.String() {
		return fmt.Errorf("routed solve: status %s, want equivalent", sol.Status)
	}

	batch := service.BatchRequest{Items: []service.BatchItem{
		{Solve: &service.SolveRequest{A: "x+y", B: "(x|y)+(x&y)", Width: 8}},
		{Solve: &service.SolveRequest{A: "x", B: "x+1", Width: 8}},
		{Solve: &service.SolveRequest{A: "x+y", B: "(x|y)+(x&y)", Width: 8}}, // dup of item 0
		{Simplify: &service.SimplifyRequest{Expr: "(x&~y)+y", Width: 8}},
	}}
	resp, err := cl.Batch(ctx, batch)
	if err != nil {
		return fmt.Errorf("routed batch: %w", err)
	}
	if len(resp.Items) != len(batch.Items) {
		return fmt.Errorf("routed batch: %d results for %d items", len(resp.Items), len(batch.Items))
	}
	for i, it := range resp.Items {
		if it.Index != i {
			return fmt.Errorf("routed batch: item %d has index %d", i, it.Index)
		}
	}
	if s := resp.Items[0].Solve; s == nil || s.Status != smt.Equivalent.String() {
		return fmt.Errorf("routed batch: item 0 = %+v, want equivalent", resp.Items[0].Solve)
	}
	if s := resp.Items[1].Solve; s == nil || s.Status != smt.NotEquivalent.String() {
		return fmt.Errorf("routed batch: item 1 = %+v, want not-equivalent", resp.Items[1].Solve)
	}
	if s := resp.Items[2].Solve; s == nil || s.Status != smt.Equivalent.String() {
		return fmt.Errorf("routed batch: item 2 = %+v, want equivalent", resp.Items[2].Solve)
	}
	if resp.Items[3].Simplify == nil || resp.Items[3].Error != "" {
		return fmt.Errorf("routed batch: simplify item failed: %+v", resp.Items[3])
	}
	if resp.Deduped < 1 {
		return fmt.Errorf("routed batch: deduped = %d, want >= 1 (duplicate pair shares one solve)", resp.Deduped)
	}
	if resp.RequestID == "" {
		return fmt.Errorf("routed batch: missing request ID")
	}
	return nil
}
