package main

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"mbasolver/internal/leakcheck"
)

// TestSmokeHonorsContext pins the deadline-flow fix: smoke threads the
// caller's context into every request it makes, so canceling that
// context stops the run promptly even against a target that never
// answers.
func TestSmokeHonorsContext(t *testing.T) {
	t.Cleanup(leakcheck.Check(t))
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Never answer; hold the request until the client gives up.
		<-r.Context().Done()
	}))
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	err := smoke(ctx, srv.URL)
	if err == nil {
		t.Fatal("smoke with a canceled context reported success")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("smoke took %v to notice the canceled context", elapsed)
	}
}

// TestSplitNodes covers the flag parsing helper the server mode leans
// on: whitespace and trailing slashes are trimmed, empties dropped.
func TestSplitNodes(t *testing.T) {
	got := splitNodes(" http://a:1/, ,http://b:2 ,")
	want := []string{"http://a:1", "http://b:2"}
	if len(got) != len(want) {
		t.Fatalf("splitNodes = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("splitNodes[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}
