package mbasolver

import (
	"os"
	"testing"
)

// TestCommittedCorpus validates the checked-in 3,000-equation dataset:
// it loads, has the paper's 1000/1000/1000 category layout, and a
// sample of equations spread across the file are identities.
func TestCommittedCorpus(t *testing.T) {
	f, err := os.Open("testdata/corpus_3000.txt")
	if err != nil {
		t.Skipf("corpus file not present: %v", err)
	}
	defer f.Close()
	ids, err := LoadCorpus(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3000 {
		t.Fatalf("corpus has %d entries, want 3000", len(ids))
	}
	counts := map[string]int{}
	for _, id := range ids {
		counts[id.Kind]++
	}
	for _, k := range []string{"linear", "poly", "nonpoly"} {
		if counts[k] != 1000 {
			t.Errorf("category %s has %d entries, want 1000", k, counts[k])
		}
	}
	step := len(ids) / 60
	for i := 0; i < len(ids); i += step {
		id := ids[i]
		if ok, w := ProbablyEqual(id.Obfuscated, id.Ground, 64, 50); !ok {
			t.Errorf("entry %d (%s) is not an identity at %v", i, id.Kind, w)
		}
	}
}

// TestCorpusSimplifiesCorrectly spot-checks the end-to-end pipeline on
// the committed corpus: simplification must preserve semantics on
// every sampled entry, and must reduce alternation on the vast
// majority.
func TestCorpusSimplifiesCorrectly(t *testing.T) {
	f, err := os.Open("testdata/corpus_3000.txt")
	if err != nil {
		t.Skipf("corpus file not present: %v", err)
	}
	defer f.Close()
	ids, err := LoadCorpus(f)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSimplifier(Options{})
	reduced, total := 0, 0
	step := len(ids) / 45
	for i := 0; i < len(ids); i += step {
		id := ids[i]
		out := s.Simplify(id.Obfuscated)
		if ok, w := ProbablyEqual(out, id.Ground, 64, 50); !ok {
			t.Errorf("entry %d (%s): simplified %q not equivalent to ground %q at %v",
				i, id.Kind, out, id.Ground, w)
			continue
		}
		total++
		if out.Metrics().Alternation <= id.Obfuscated.Metrics().Alternation {
			reduced++
		}
	}
	if reduced*10 < total*9 {
		t.Errorf("alternation reduced on only %d/%d sampled entries", reduced, total)
	}
}
