module mbasolver

go 1.22
