package mbasolver

import (
	"io"

	"mbasolver/internal/gen"
	"mbasolver/internal/metrics"
)

// Identity is one MBA identity equation: Obfuscated == Ground for all
// inputs at every width up to 64.
type Identity struct {
	// Kind is "linear", "poly" or "nonpoly".
	Kind string
	// Obfuscated is the complex side.
	Obfuscated Expression
	// Ground is the simple side.
	Ground Expression
	// Hard marks non-poly samples generated beyond MBA-Solver's
	// normalization model.
	Hard bool
}

// Obfuscator generates MBA identities — usable both as an obfuscation
// engine (take Ground, emit Obfuscated) and as a benchmark corpus
// generator (the paper's §3.1 dataset).
type Obfuscator struct {
	g *gen.Generator
}

// NewObfuscator returns a deterministic generator for the seed.
func NewObfuscator(seed int64) *Obfuscator {
	return &Obfuscator{gen.New(gen.Config{Seed: seed})}
}

// Linear returns a random linear MBA identity.
func (o *Obfuscator) Linear() Identity { return wrap(o.g.Linear()) }

// Poly returns a random polynomial MBA identity.
func (o *Obfuscator) Poly() Identity { return wrap(o.g.Poly()) }

// NonPoly returns a random non-polynomial MBA identity.
func (o *Obfuscator) NonPoly() Identity { return wrap(o.g.NonPoly()) }

// Corpus returns n identities of each category (3n total), the layout
// of the paper's 3,000-equation corpus for n=1000.
func (o *Obfuscator) Corpus(n int) []Identity {
	samples := o.g.Corpus(n)
	out := make([]Identity, len(samples))
	for i, s := range samples {
		out[i] = wrap(s)
	}
	return out
}

func wrap(s gen.Sample) Identity {
	return Identity{
		Kind:       s.Kind.String(),
		Obfuscated: Expression{s.Obfuscated},
		Ground:     Expression{s.Ground},
		Hard:       s.Hard,
	}
}

func unwrap(ids []Identity) []gen.Sample {
	out := make([]gen.Sample, len(ids))
	for i, id := range ids {
		var k metrics.Kind
		switch id.Kind {
		case "poly":
			k = metrics.KindPoly
		case "nonpoly":
			k = metrics.KindNonPoly
		}
		out[i] = gen.Sample{
			ID:         i + 1,
			Kind:       k,
			Obfuscated: id.Obfuscated.e,
			Ground:     id.Ground.e,
			Hard:       id.Hard,
		}
	}
	return out
}

// SaveCorpus writes identities in the corpus text format.
func SaveCorpus(w io.Writer, ids []Identity) error {
	return gen.Save(w, unwrap(ids))
}

// LoadCorpus reads identities written by SaveCorpus.
func LoadCorpus(r io.Reader) ([]Identity, error) {
	samples, err := gen.Load(r)
	if err != nil {
		return nil, err
	}
	out := make([]Identity, len(samples))
	for i, s := range samples {
		out[i] = wrap(s)
	}
	return out, nil
}

// Obfuscate rewrites an expression into a provably equivalent, more
// complex MBA form (Tigress-style rule rewriting plus a linear
// scramble). layers controls how many rewrite rounds are applied;
// 2..6 is typical.
func (o *Obfuscator) Obfuscate(e Expression, layers int) Expression {
	return Expression{o.g.Obfuscate(e.e, layers)}
}
