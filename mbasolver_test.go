package mbasolver

import (
	"strings"
	"testing"
)

func TestParseAndString(t *testing.T) {
	e, err := Parse("2*(x|y) - (~x&y) - (x&~y)")
	if err != nil {
		t.Fatal(err)
	}
	if got := e.String(); got != "2*(x|y)-(~x&y)-(x&~y)" {
		t.Errorf("String = %q", got)
	}
	if _, err := Parse("x +"); err == nil {
		t.Error("expected parse error")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse did not panic")
		}
	}()
	MustParse("((")
}

func TestSimplifyFacade(t *testing.T) {
	e := MustParse("2*(x|y) - (~x&y) - (x&~y)")
	s := Simplify(e)
	if s.String() != "x+y" {
		t.Errorf("Simplify = %q", s)
	}
	if !s.Equal(MustParse("x+y")) {
		t.Error("Equal broken")
	}
}

func TestMetricsFacade(t *testing.T) {
	m := MustParse("(x&~y)*(~x&y) + (x&y)*(x|y)").Metrics()
	if m.Kind != "poly" || m.NumVars != 2 || m.Alternation != 4 {
		t.Errorf("Metrics = %+v", m)
	}
}

func TestEvalFacade(t *testing.T) {
	e := MustParse("x*y + 1")
	if got := e.Eval(map[string]uint64{"x": 3, "y": 5}, 8); got != 16 {
		t.Errorf("Eval = %d", got)
	}
	vars := e.Vars()
	if len(vars) != 2 || vars[0] != "x" {
		t.Errorf("Vars = %v", vars)
	}
}

func TestCheckEquivalenceFacade(t *testing.T) {
	a := MustParse("x*y")
	b := MustParse("(x&~y)*(~x&y) + (x&y)*(x|y)")
	v := CheckEquivalence(a, b, 8)
	if !v.Equivalent || v.Timeout {
		t.Errorf("CheckEquivalence = %+v", v)
	}
	v = CheckEquivalence(a, MustParse("x+y"), 8)
	if v.Equivalent {
		t.Error("x*y == x+y accepted")
	}
	if len(v.Witness) == 0 {
		t.Error("no witness returned")
	}
}

func TestProbablyEqualFacade(t *testing.T) {
	ok, _ := ProbablyEqual(MustParse("x+y"), MustParse("y+x"), 64, 100)
	if !ok {
		t.Error("x+y vs y+x rejected")
	}
	ok, w := ProbablyEqual(MustParse("x"), MustParse("y"), 64, 100)
	if ok {
		t.Error("x vs y accepted")
	}
	if len(w) == 0 {
		t.Error("no witness")
	}
}

func TestSimplifierOptions(t *testing.T) {
	for _, opts := range []Options{
		{},
		{Width: 8},
		{UseDisjunctionBasis: true},
		{DisableFinalOptimization: true},
		{DisableCSE: true},
		{DisableLookupTable: true},
	} {
		s := NewSimplifier(opts)
		in := MustParse("(x|y) + y - (~x&y)")
		out := s.Simplify(in)
		if ok, w := ProbablyEqual(in, out, 64, 200); !ok {
			t.Errorf("opts %+v broke semantics: %v at %v", opts, out, w)
		}
	}
}

func TestObfuscatorFacade(t *testing.T) {
	o := NewObfuscator(3)
	for _, id := range []Identity{o.Linear(), o.Poly(), o.NonPoly()} {
		if ok, w := ProbablyEqual(id.Obfuscated, id.Ground, 64, 100); !ok {
			t.Errorf("%s identity broken at %v", id.Kind, w)
		}
	}
	corpus := o.Corpus(4)
	if len(corpus) != 12 {
		t.Fatalf("Corpus = %d entries", len(corpus))
	}
	kinds := map[string]int{}
	for _, id := range corpus {
		kinds[id.Kind]++
	}
	if kinds["linear"] != 4 || kinds["poly"] != 4 || kinds["nonpoly"] != 4 {
		t.Errorf("kind layout: %v", kinds)
	}
}

func TestCorpusSaveLoadFacade(t *testing.T) {
	o := NewObfuscator(4)
	ids := o.Corpus(2)
	var sb strings.Builder
	if err := SaveCorpus(&sb, ids); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCorpus(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(ids) {
		t.Fatalf("loaded %d of %d", len(loaded), len(ids))
	}
	for i := range ids {
		if loaded[i].Kind != ids[i].Kind {
			t.Errorf("entry %d kind %q != %q", i, loaded[i].Kind, ids[i].Kind)
		}
	}
}

// TestReservedTempPrefix documents the _t/_v name reservation of the
// simplifier internals: expressions using them still simplify soundly.
func TestReservedTempPrefix(t *testing.T) {
	in := MustParse("(a|b) + b - (~a&b)")
	out := Simplify(in)
	if out.String() != "a+b" {
		t.Errorf("Simplify over arbitrary names = %q", out)
	}
}
