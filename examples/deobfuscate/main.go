// Deobfuscate: recover the data-flow semantics of Tigress-style
// MBA-obfuscated code.
//
// The scenario mirrors the paper's motivation (§1, §2.2): a reverse
// engineer faces decompiled statements whose arithmetic has been
// rewritten into dense mixed bitwise-arithmetic forms by an
// obfuscating compiler. MBA-Solver recovers the original expressions
// without any solver in the loop, and the recovered forms are then
// cheap to reason about.
//
//	go run ./examples/deobfuscate
package main

import (
	"fmt"
	"log"

	"mbasolver"
)

// obfuscatedProgram is a mock decompiler output: each assignment's
// right-hand side went through one or more MBA encoding passes.
var obfuscatedProgram = []struct {
	lhs string
	rhs string
}{
	// Tigress EncodeArithmetic-style rewrites of simple statements.
	{"sum", "(key|data) + data - (~key&data)"},         // key + data
	{"diff", "(serial^seed) + 2*(serial|~seed) + 2"},   // serial - seed
	{"masked", "(flags&~mask) + mask - (~flags&mask)"}, // flags | mask
	{"check", "(a|b) - (a&b) + 2*(a&b)"},               // a + b (two layers)
	{"hash", "(lo&~hi)*(~lo&hi) + (lo&hi)*(lo|hi)"},    // lo * hi (poly MBA)
	{"norm", "~(ctr-1)"},                               // -ctr
}

func main() {
	s := mbasolver.NewSimplifier(mbasolver.Options{})

	fmt.Println("recovered data flow:")
	for _, stmt := range obfuscatedProgram {
		e, err := mbasolver.Parse(stmt.rhs)
		if err != nil {
			log.Fatalf("%s: %v", stmt.lhs, err)
		}
		recovered := s.Simplify(e)

		// Confidence check: the recovery is semantics-preserving by
		// construction, but belt-and-braces random testing is cheap.
		if ok, w := mbasolver.ProbablyEqual(e, recovered, 64, 500); !ok {
			log.Fatalf("%s: recovery changed semantics at %v", stmt.lhs, w)
		}

		mb, ma := e.Metrics(), recovered.Metrics()
		fmt.Printf("  %-6s = %-44s  // was %d chars, alternation %d -> %d\n",
			stmt.lhs, recovered, mb.Length, mb.Alternation, ma.Alternation)
	}

	// The paper's Figure 1 equation: Z3 alone cannot verify it within
	// an hour, but after simplification both sides normalize to the
	// same expression and the identity is immediate.
	lhs := mbasolver.MustParse("x*y")
	rhs := mbasolver.MustParse("(x&~y)*(~x&y) + (x&y)*(x|y)")
	verdict := mbasolver.CheckEquivalence(lhs, rhs, 16)
	fmt.Printf("\nfigure-1 identity x*y == (x&~y)*(~x&y)+(x&y)*(x|y): equivalent=%v in %v\n",
		verdict.Equivalent, verdict.Elapsed)
}
