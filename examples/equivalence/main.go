// Equivalence: use MBA-Solver as an SMT preprocessing pass.
//
// This example reproduces the paper's headline pipeline (Figure 5) on
// a handful of equations: each query is attempted raw with a small
// solving budget, then again after MBA-Solver simplification. The raw
// attempts mostly exhaust their budget; the simplified ones finish in
// microseconds — the paper's Table 2 vs Table 6 contrast in miniature.
//
//	go run ./examples/equivalence
package main

import (
	"fmt"

	"mbasolver"
)

var queries = []struct {
	name string
	lhs  string
	rhs  string
	// identity records the expected verdict; the last query is a near
	// miss that must be refuted, demonstrating that the pipeline does
	// not just answer "yes".
	identity bool
}{
	{"hackers-delight-add", "x+y", "(x|y) + y - (~x&y)", true},
	{"example1-sub", "x-y", "(x^y) + 2*(x|~y) + 2", true},
	{"figure1-poly", "x*y", "(x&~y)*(~x&y) + (x&y)*(x|y)", true},
	{"cse-nonpoly", "x-y+z", "(((x&~y)-(~x&y))|z) + (((x&~y)-(~x&y))&z)", true},
	{"near-miss", "x*y", "(x&~y)*(~x&y) + (x&y)*(x|y) + 1", false},
}

func main() {
	fmt.Println("query                 raw (budgeted)        with MBA-Solver")
	fmt.Println("---------------------------------------------------------------")
	for _, q := range queries {
		lhs := mbasolver.MustParse(q.lhs)
		rhs := mbasolver.MustParse(q.rhs)

		raw := mbasolver.CheckEquivalenceRaw(lhs, rhs, 16)
		simplified := mbasolver.CheckEquivalence(lhs, rhs, 16)

		fmt.Printf("%-20s  %-20s  %s\n", q.name, verdictString(raw), verdictString(simplified))

		if simplified.Timeout {
			fmt.Printf("  unexpected timeout after simplification!\n")
		} else if simplified.Equivalent != q.identity {
			fmt.Printf("  WRONG VERDICT: want identity=%v\n", q.identity)
		}
	}
}

func verdictString(v mbasolver.Verdict) string {
	switch {
	case v.Timeout:
		return fmt.Sprintf("timeout (%v)", v.Elapsed.Round(1000))
	case v.Equivalent:
		return fmt.Sprintf("equal (%v)", v.Elapsed.Round(1000))
	default:
		return fmt.Sprintf("refuted (%v)", v.Elapsed.Round(1000))
	}
}
