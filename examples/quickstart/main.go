// Quickstart: parse an MBA expression, simplify it with MBA-Solver,
// inspect the complexity metrics and prove the transformation correct
// with the in-tree SMT solver.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mbasolver"
)

func main() {
	// The running example of the paper's §4: a 3-alternation linear
	// MBA that is just x+y in disguise.
	e, err := mbasolver.Parse("2*(x|y) - (~x&y) - (x&~y)")
	if err != nil {
		log.Fatal(err)
	}

	simplified := mbasolver.Simplify(e)
	fmt.Printf("input:      %s\n", e)
	fmt.Printf("simplified: %s\n", simplified)

	before, after := e.Metrics(), simplified.Metrics()
	fmt.Printf("alternation: %d -> %d\n", before.Alternation, after.Alternation)
	fmt.Printf("length:      %d -> %d\n", before.Length, after.Length)

	// Quick sanity check on random inputs...
	if ok, witness := mbasolver.ProbablyEqual(e, simplified, 64, 1000); !ok {
		log.Fatalf("not equivalent?! witness: %v", witness)
	}
	// ...and a real proof at 16 bits via bit-blasting + CDCL.
	verdict := mbasolver.CheckEquivalenceRaw(e, simplified, 16)
	if !verdict.Equivalent {
		log.Fatalf("solver verdict: %+v", verdict)
	}
	fmt.Printf("proved equivalent at 16 bits in %v\n", verdict.Elapsed)

	// Evaluate both on a concrete input.
	env := map[string]uint64{"x": 0xdead, "y": 0xbeef}
	fmt.Printf("eval at x=%#x y=%#x: %#x == %#x\n",
		env["x"], env["y"], e.Eval(env, 64), simplified.Eval(env, 64))
}
