// Symexec: break an MBA-obfuscated license check with symbolic
// execution — the paper's motivating scenario (§1, and the
// backward-bounded DSE of Bardin et al. that §2.2 cites) end to end.
//
// The shipped routine contains two MBA tricks:
//
//  1. An *opaque predicate*: a scrambled MBA expression that is
//     identically zero guards a decoy branch. Proving the decoy
//     infeasible is an UNSAT query — exactly what MBA blocks. Raw
//     exploration burns its budget and keeps the bogus path alive;
//     with MBA-Solver the predicate collapses to the constant 0 and
//     the decoy is pruned without any solver call.
//
//  2. The real check `(serial ^ user) - 44 == 0`, MBA-obfuscated.
//     Finding an accepting input is a SAT query; simplification
//     shrinks it from a 100+ character monster to a 5-term condition.
//
//     go run ./examples/symexec
package main

import (
	"fmt"
	"log"

	"mbasolver"
	"mbasolver/internal/parser"
	"mbasolver/internal/smt"
	"mbasolver/internal/symexec"
	"mbasolver/internal/vm"
)

func main() {
	obfuscator := mbasolver.NewObfuscator(2021)

	// The real check and its obfuscated form.
	plain := mbasolver.MustParse("(serial ^ user) - 44")
	check := obfuscator.Obfuscate(plain, 4)

	// The opaque predicate: an MBA expression that is identically zero,
	// guarding a decoy branch. Subtracting the two sides of a generated
	// linear MBA identity gives a scrambled zero of full corpus
	// hardness — the solver has to prove a Table-2-grade UNSAT query to
	// kill the decoy.
	id := obfuscator.Linear()
	for i := 0; i < 20; i++ {
		next := obfuscator.Linear()
		if len(next.Obfuscated.Vars()) >= 2 &&
			next.Obfuscated.Metrics().Alternation > id.Obfuscated.Metrics().Alternation {
			id = next
		}
	}
	opaque := mbasolver.MustParse(
		"(" + id.Obfuscated.String() + ") - (" + id.Ground.String() + ")")
	opaque = opaque.RenameVars("k_") // fresh key-material inputs

	fmt.Printf("real check:       %s == 0\n", plain)
	fmt.Printf("shipped check:    %s == 0\n", check)
	fmt.Printf("opaque predicate: %s   (identically 0, but who can tell)\n\n", opaque)

	prog := buildLicenseRoutine(check, opaque)

	budget := smt.Budget{Conflicts: 3000}

	exRaw, err := symexec.New(prog, symexec.Config{Budget: budget})
	if err != nil {
		log.Fatal(err)
	}
	rawPaths := exRaw.Explore()
	fmt.Printf("raw exploration:        %d paths, %d feasibility queries, %d timeouts, %d pruned\n",
		len(rawPaths), exRaw.Stats().Queries, exRaw.Stats().Timeouts, exRaw.Stats().Infeasible)
	report(prog, rawPaths, "raw")

	exSimp, err := symexec.New(prog, symexec.Config{Budget: budget, Simplify: true})
	if err != nil {
		log.Fatal(err)
	}
	simpPaths := exSimp.Explore()
	fmt.Printf("\nsimplified exploration: %d paths, %d feasibility queries, %d timeouts, %d pruned\n",
		len(simpPaths), exSimp.Stats().Queries, exSimp.Stats().Timeouts, exSimp.Stats().Infeasible)
	report(prog, simpPaths, "simplified")
}

// buildLicenseRoutine compiles:
//
//	if (opaque != 0) return 0xBAD   // decoy, unreachable
//	if (check  == 0) return 1       // accepted
//	return 0                        // rejected
func buildLicenseRoutine(check, opaque mbasolver.Expression) *vm.Program {
	b := vm.NewBuilder(8)
	op := b.CompileExpr(parser.MustParse(opaque.String()))
	jnz := b.Jnz(op)
	g := b.CompileExpr(parser.MustParse(check.String()))
	jz := b.Jz(g)
	reject := b.Const(0)
	b.Halt(reject)
	acceptLbl := b.Label()
	accept := b.Const(1)
	b.Halt(accept)
	decoyLbl := b.Label()
	decoy := b.Const(0xAD)
	b.Halt(decoy)
	b.SetTarget(jz, acceptLbl)
	b.SetTarget(jnz, decoyLbl)
	prog, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	return prog
}

func report(prog *vm.Program, paths []symexec.Path, label string) {
	decoyAlive, accepted := false, false
	for _, p := range paths {
		if p.Result != nil && p.Result.IsConst(0xAD) && (p.Feasible || p.Unknown) {
			decoyAlive = true
		}
		if p.Feasible && p.Result != nil && p.Result.IsConst(1) {
			accepted = true
			out, err := prog.Run(p.Inputs)
			if err != nil || out != 1 {
				log.Fatalf("%s: model replay failed: %v (out=%d)", label, err, out)
			}
			fmt.Printf("  keygen: serial=%#x user=%#x -> accepted\n",
				p.Inputs["serial"], p.Inputs["user"])
			fmt.Printf("  recovered condition: %s == 0\n", p.Branches[len(p.Branches)-1].Cond)
		}
	}
	if decoyAlive {
		fmt.Printf("  decoy branch NOT proven dead (opaque predicate survived)\n")
	} else {
		fmt.Printf("  decoy branch proven unreachable\n")
	}
	if !accepted {
		fmt.Printf("  no accepting input found within budget\n")
	}
}
