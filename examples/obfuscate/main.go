// Obfuscate: use the corpus generator as an MBA obfuscation engine —
// the inverse of the simplifier, and the §2.2 application the paper's
// commercial users (Tigress, Quarkslab, Irdeto, Cloakware) ship.
//
// The example emits obfuscated replacements for simple expressions,
// validates each one on random inputs, and then closes the loop by
// running MBA-Solver over its own output to confirm the obfuscation is
// reversible by signature reasoning.
//
//	go run ./examples/obfuscate [-seed N]
package main

import (
	"flag"
	"fmt"
	"log"

	"mbasolver"
)

func main() {
	seed := flag.Int64("seed", 2024, "obfuscation randomness seed")
	flag.Parse()

	o := mbasolver.NewObfuscator(*seed)
	s := mbasolver.NewSimplifier(mbasolver.Options{})

	fmt.Println("linear MBA obfuscations:")
	for i := 0; i < 3; i++ {
		id := o.Linear()
		show(s, id)
	}
	// Direct obfuscation of a user expression (the Tigress pipeline).
	fmt.Println("\ndirect obfuscation of serial^key:")
	target := mbasolver.MustParse("serial^key")
	obf := o.Obfuscate(target, 3)
	if ok, _ := mbasolver.ProbablyEqual(target, obf, 64, 500); !ok {
		log.Fatal("direct obfuscation broke semantics")
	}
	fmt.Printf("  %s\n    -> %s\n", target, obf)

	fmt.Println("\npolynomial MBA obfuscations:")
	for i := 0; i < 2; i++ {
		id := o.Poly()
		show(s, id)
	}
	fmt.Println("\nnon-polynomial MBA obfuscations:")
	for i := 0; i < 2; i++ {
		id := o.NonPoly()
		show(s, id)
	}
}

func show(s *mbasolver.Simplifier, id mbasolver.Identity) {
	// Every emitted identity must hold; validate on random inputs at
	// several widths (identities generated at width 64 hold below it).
	for _, width := range []uint{8, 16, 32, 64} {
		if ok, w := mbasolver.ProbablyEqual(id.Obfuscated, id.Ground, width, 200); !ok {
			log.Fatalf("generator emitted a non-identity at width %d: %v (witness %v)",
				width, id.Obfuscated, w)
		}
	}
	fmt.Printf("  %s\n    -> %s\n", id.Ground, id.Obfuscated)

	// Round trip: MBA-Solver must undo the obfuscation (up to
	// semantic equality, checked by signature-preserving random
	// testing).
	recovered := s.Simplify(id.Obfuscated)
	ok, _ := mbasolver.ProbablyEqual(recovered, id.Ground, 64, 300)
	fmt.Printf("    round trip: %s (recovered=%v, %d chars vs %d)\n",
		recovered, ok, len(recovered.String()), len(id.Obfuscated.String()))
}
